#include "onex/viz/charts.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/viz/ascii_canvas.h"

namespace onex::viz {
namespace {

/// UTF-8 lower block glyphs, 1/8 through 8/8.
const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

std::pair<double, double> RangeOf(std::span<const double> xs) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : xs) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  return {lo, hi};
}

std::pair<double, double> JointRange(std::span<const double> a,
                                     std::span<const double> b) {
  const auto [la, ha] = RangeOf(a);
  const auto [lb, hb] = RangeOf(b);
  return {std::min(la, lb), std::max(ha, hb)};
}

/// Mean of values mapped into bucket `k` of `width` buckets.
double Resample(std::span<const double> values, std::size_t k,
                std::size_t width) {
  const std::size_t n = values.size();
  const std::size_t begin = k * n / width;
  std::size_t end = (k + 1) * n / width;
  if (end <= begin) end = begin + 1;
  double acc = 0.0;
  for (std::size_t i = begin; i < std::min(end, n); ++i) acc += values[i];
  return acc / static_cast<double>(std::min(end, n) - begin);
}

}  // namespace

std::string RenderSparkline(std::span<const double> values,
                            std::size_t width) {
  if (values.empty() || width == 0) return "";
  const std::size_t w = std::min(width, values.size());
  const auto [lo, hi] = RangeOf(values);
  const double span = hi - lo;
  std::string out;
  for (std::size_t k = 0; k < w; ++k) {
    const double v = Resample(values, k, w);
    const int level = std::clamp(
        static_cast<int>((v - lo) / span * 8.0), 0, 7);
    out += kBlocks[level];
  }
  return out;
}

std::string RenderMultiLineChart(const MultiLineChartData& data,
                                 std::size_t width, std::size_t height) {
  AsciiCanvas canvas(width, height);
  const auto [lo, hi] = JointRange(data.series_a, data.series_b);
  canvas.PlotSeries(data.series_b, lo, hi, 'o');
  // Second pass: overlapping cells become '+'.
  {
    AsciiCanvas probe(width, height);
    probe.PlotSeries(data.series_a, lo, hi, '*');
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const char a = probe.At(x, y);
        if (a == ' ') continue;
        canvas.Set(x, y, canvas.At(x, y) == 'o' ? '+' : '*');
      }
    }
  }
  std::string out = canvas.Render();
  out += StrFormat("legend: * %s   o %s   + overlap   (%zu warped links)\n",
                   data.name_a.c_str(), data.name_b.c_str(),
                   data.links.size());
  return out;
}

std::string RenderRadialChart(const RadialChartData& data, std::size_t size) {
  AsciiCanvas canvas(size, size);
  double max_r = 0.0;
  for (const RadialPoint& p : data.points_a) max_r = std::max(max_r, p.radius);
  for (const RadialPoint& p : data.points_b) max_r = std::max(max_r, p.radius);
  if (max_r <= 0.0) max_r = 1.0;
  const double c = static_cast<double>(size - 1) / 2.0;
  auto plot = [&](const std::vector<RadialPoint>& pts, char marker) {
    for (const RadialPoint& p : pts) {
      const double r = p.radius / max_r * c;
      const std::size_t x =
          static_cast<std::size_t>(std::llround(c + r * std::cos(p.angle)));
      const std::size_t y =
          static_cast<std::size_t>(std::llround(c - r * std::sin(p.angle)));
      canvas.Set(x, y, canvas.At(x, y) == ' ' || canvas.At(x, y) == marker
                           ? marker
                           : '+');
    }
  };
  canvas.Set(static_cast<std::size_t>(c), static_cast<std::size_t>(c), '.');
  plot(data.points_a, '*');
  plot(data.points_b, 'o');
  std::string out = canvas.Render();
  out += StrFormat("radial: * %s   o %s   + overlap\n", data.name_a.c_str(),
                   data.name_b.c_str());
  return out;
}

std::string RenderConnectedScatter(const ConnectedScatterData& data,
                                   std::size_t size) {
  AsciiCanvas canvas(size, size);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& [x, y] : data.points) {
    lo = std::min({lo, x, y});
    hi = std::max({hi, x, y});
  }
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  const double span = hi - lo;
  // 45-degree reference diagonal: bottom-left to top-right.
  for (std::size_t k = 0; k < size; ++k) {
    canvas.Set(k, size - 1 - k, '.');
  }
  for (const auto& [xv, yv] : data.points) {
    const std::size_t x = static_cast<std::size_t>(
        std::llround((xv - lo) / span * static_cast<double>(size - 1)));
    const std::size_t y = static_cast<std::size_t>(std::llround(
        (1.0 - (yv - lo) / span) * static_cast<double>(size - 1)));
    canvas.Set(x, y, 'x');
  }
  std::string out = canvas.Render();
  out += StrFormat(
      "connected scatter: x=%s  y=%s  diagonal deviation=%.4f "
      "(0 = identical)\n",
      data.name_a.c_str(), data.name_b.c_str(), data.diagonal_deviation);
  return out;
}

std::string RenderSeasonalView(const SeasonalViewData& data,
                               std::size_t width) {
  std::string out;
  out += StrFormat("series %s (%zu points)\n", data.series_name.c_str(),
                   data.series.size());
  out += RenderSparkline(data.series, width);
  out += '\n';
  const std::size_t n = std::max<std::size_t>(1, data.series.size());
  for (const SeasonalViewData::PatternRow& row : data.patterns) {
    std::string bar(width, '.');
    for (const SeasonalSegment& seg : row.segments) {
      const std::size_t x0 = seg.start * width / n;
      std::size_t x1 = (seg.start + seg.length) * width / n;
      if (x1 <= x0) x1 = x0 + 1;
      for (std::size_t x = x0; x < std::min(x1, width); ++x) {
        bar[x] = seg.color == 0 ? 'b' : 'g';
      }
    }
    out += bar;
    out += StrFormat("  len=%zu x%zu gap~%zu cohesion=%.4f\n", row.length,
                     row.segments.size(), row.typical_gap, row.cohesion);
  }
  return out;
}

std::string RenderOverviewPane(const OverviewPaneData& data,
                               std::size_t sparkline_width) {
  std::string out;
  out += "overview: group representatives (by cardinality)\n";
  for (const OverviewPaneData::Cell& cell : data.cells) {
    out += RenderSparkline(cell.representative, sparkline_width);
    out += StrFormat("  len=%-4zu n=%-5zu intensity=%.2f\n", cell.length,
                     cell.cardinality, cell.intensity);
  }
  return out;
}

}  // namespace onex::viz
