#include "onex/viz/ascii_canvas.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <utility>

namespace onex::viz {

void AsciiCanvas::VLine(std::size_t x, std::size_t y0, std::size_t y1,
                        char c) {
  if (y0 > y1) std::swap(y0, y1);
  for (std::size_t y = y0; y <= y1; ++y) Set(x, y, c);
}

void AsciiCanvas::PlotSeries(std::span<const double> values, double lo,
                             double hi, char marker, bool overwrite) {
  if (values.empty() || width_ == 0 || height_ == 0) return;
  const double span = hi > lo ? hi - lo : 1.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t x =
        values.size() == 1
            ? 0
            : static_cast<std::size_t>(std::llround(
                  static_cast<double>(i) * static_cast<double>(width_ - 1) /
                  static_cast<double>(values.size() - 1)));
    const double frac = (values[i] - lo) / span;
    const std::size_t y = static_cast<std::size_t>(std::llround(
        (1.0 - std::clamp(frac, 0.0, 1.0)) * static_cast<double>(height_ - 1)));
    if (overwrite || At(x, y) == ' ') Set(x, y, marker);
  }
}

std::string AsciiCanvas::Render() const {
  std::string out;
  out.reserve((width_ + 1) * height_);
  for (std::size_t y = 0; y < height_; ++y) {
    out.append(cells_.begin() + static_cast<std::ptrdiff_t>(y * width_),
               cells_.begin() + static_cast<std::ptrdiff_t>((y + 1) * width_));
    // Trim trailing spaces per row for tidy terminal output.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  }
  return out;
}

}  // namespace onex::viz
