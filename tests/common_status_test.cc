#include "onex/common/status.h"

#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "onex/common/result.h"

namespace onex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("widget").ToString(), "NotFound: widget");
  EXPECT_EQ(Status(StatusCode::kIoError, "").ToString(), "IoError");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::ParseError("bad token");
  EXPECT_EQ(os.str(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

Status FailsWhenNegative(int x) {
  ONEX_RETURN_IF_ERROR(x < 0 ? Status::InvalidArgument("negative")
                             : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsWhenNegative(3).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(10);
  EXPECT_EQ(r.value_or(0), 10);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ONEX_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> odd = Quarter(6);  // 6/2 = 3, second Half fails
  ASSERT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace onex
