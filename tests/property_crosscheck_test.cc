/// Cross-validation suites: the optimized kernels against independent naive
/// reference implementations, plus randomized round-trip ("fuzz-lite")
/// sweeps over the serialization layers.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/distance/dtw.h"
#include "onex/json/json.h"
#include "onex/ts/ucr_io.h"
#include "test_util.h"

namespace onex {
namespace {

/// Naive memoized-recursion DTW, written deliberately differently from the
/// production iterative DP (top-down vs bottom-up) so a shared bug is
/// unlikely.
class ReferenceDtw {
 public:
  ReferenceDtw(std::span<const double> a, std::span<const double> b)
      : a_(a), b_(b) {}

  double Distance() {
    if (a_.empty() || b_.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::sqrt(Solve(a_.size() - 1, b_.size() - 1));
  }

 private:
  double Solve(std::size_t i, std::size_t j) {
    const auto key = std::make_pair(i, j);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const double d = a_[i] - b_[j];
    const double cost = d * d;
    double best;
    if (i == 0 && j == 0) {
      best = cost;
    } else if (i == 0) {
      best = Solve(0, j - 1) + cost;
    } else if (j == 0) {
      best = Solve(i - 1, 0) + cost;
    } else {
      best = std::min({Solve(i - 1, j - 1), Solve(i - 1, j), Solve(i, j - 1)}) +
             cost;
    }
    memo_[key] = best;
    return best;
  }

  std::span<const double> a_;
  std::span<const double> b_;
  std::map<std::pair<std::size_t, std::size_t>, double> memo_;
};

class CrossCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossCheckTest, DtwMatchesNaiveRecursiveReference) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 2 + rng.UniformIndex(20);
    const std::size_t m = 2 + rng.UniformIndex(20);
    const std::vector<double> a = testing::RandomSeries(&rng, n);
    const std::vector<double> b = testing::RandomSeries(&rng, m);
    ReferenceDtw ref(a, b);
    EXPECT_NEAR(DtwDistance(a, b), ref.Distance(), 1e-9)
        << "n=" << n << " m=" << m;
  }
}

/// Random JSON document generator for round-trip fuzzing.
json::Value RandomJson(Rng* rng, int depth) {
  const int kind = depth > 3 ? static_cast<int>(rng->UniformIndex(4))
                             : static_cast<int>(rng->UniformIndex(6));
  switch (kind) {
    case 0:
      return json::Value();
    case 1:
      return json::Value(rng->Bernoulli(0.5));
    case 2: {
      // Mix of magnitudes, including negatives and tiny values.
      const double mag = std::pow(10.0, rng->Uniform(-8.0, 8.0));
      return json::Value(rng->Uniform(-1.0, 1.0) * mag);
    }
    case 3: {
      std::string s;
      const std::size_t len = rng->UniformIndex(12);
      for (std::size_t i = 0; i < len; ++i) {
        // Printable ASCII plus the escape-relevant characters.
        const char* alphabet = "abcXYZ 019\"\\\n\t/{}[]:,";
        s += alphabet[rng->UniformIndex(22)];
      }
      return json::Value(std::move(s));
    }
    case 4: {
      json::Value arr = json::Value::MakeArray();
      const std::size_t len = rng->UniformIndex(5);
      for (std::size_t i = 0; i < len; ++i) {
        arr.Append(RandomJson(rng, depth + 1));
      }
      return arr;
    }
    default: {
      json::Value obj = json::Value::MakeObject();
      const std::size_t len = rng->UniformIndex(5);
      for (std::size_t i = 0; i < len; ++i) {
        std::string key = "k";
        key += std::to_string(i);
        obj.Set(key, RandomJson(rng, depth + 1));
      }
      return obj;
    }
  }
}

TEST_P(CrossCheckTest, JsonRoundTripsRandomDocuments) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 25; ++trial) {
    const json::Value doc = RandomJson(&rng, 0);
    Result<json::Value> compact = json::Parse(doc.Dump());
    ASSERT_TRUE(compact.ok()) << doc.Dump();
    EXPECT_EQ(*compact, doc);
    Result<json::Value> pretty = json::Parse(doc.Dump(2));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, doc);
  }
}

TEST_P(CrossCheckTest, UcrRoundTripsRandomDatasets) {
  Rng rng(GetParam() + 2000);
  Dataset ds("fuzz");
  const std::size_t num = 1 + rng.UniformIndex(6);
  for (std::size_t s = 0; s < num; ++s) {
    const std::size_t len = 2 + rng.UniformIndex(30);
    std::vector<double> vals;
    for (std::size_t i = 0; i < len; ++i) {
      vals.push_back(rng.Uniform(-1.0, 1.0) *
                     std::pow(10.0, rng.Uniform(-6.0, 6.0)));
    }
    std::string series_name = "s";
    series_name += std::to_string(s);
    ds.Add(TimeSeries(std::move(series_name), std::move(vals),
                      std::to_string(rng.UniformIndex(5))));
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteUcrStream(ds, out).ok());
  std::istringstream in(out.str());
  Result<Dataset> back = ReadUcrStream(in, "fuzz");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), ds.size());
  for (std::size_t s = 0; s < ds.size(); ++s) {
    ASSERT_EQ((*back)[s].length(), ds[s].length());
    for (std::size_t i = 0; i < ds[s].length(); ++i) {
      EXPECT_DOUBLE_EQ((*back)[s][i], ds[s][i]);
    }
    EXPECT_EQ((*back)[s].label(), ds[s].label());
  }
}

TEST_P(CrossCheckTest, JsonParserSurvivesMutatedInput) {
  // Mutation fuzzing: flip bytes of valid JSON; the parser must either
  // succeed or fail cleanly (no crash, no hang) — never anything else.
  Rng rng(GetParam() + 3000);
  const json::Value doc = RandomJson(&rng, 0);
  std::string text = doc.Dump();
  if (text.empty()) return;
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = text;
    const std::size_t edits = 1 + rng.UniformIndex(3);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.UniformIndex(mutated.size());
      mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    Result<json::Value> result = json::Parse(mutated);
    if (result.ok()) {
      // Whatever parsed must re-serialize and re-parse consistently.
      Result<json::Value> again = json::Parse(result->Dump());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, *result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheckTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace onex
