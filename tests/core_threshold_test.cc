#include "onex/core/threshold_advisor.h"

#include <cstddef>
#include <gtest/gtest.h>
#include <vector>

#include "onex/gen/economic_panel.h"
#include "onex/gen/generators.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(ThresholdAdvisorTest, RecommendationsAreSortedAndOrderedByPercentile) {
  const Dataset ds = testing::SmallDataset(8, 30, 7);
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 500;
  opt.percentiles = {25.0, 1.0, 10.0, 5.0};
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->recommendations.size(), 4u);
  for (std::size_t i = 1; i < report->recommendations.size(); ++i) {
    EXPECT_LE(report->recommendations[i - 1].st,
              report->recommendations[i].st);
    EXPECT_LE(report->recommendations[i - 1].percentile,
              report->recommendations[i].percentile);
  }
  EXPECT_GT(report->pairs_sampled, 0u);
  EXPECT_LE(report->min_distance, report->median_distance);
  EXPECT_LE(report->median_distance, report->max_distance);
}

TEST(ThresholdAdvisorTest, Deterministic) {
  const Dataset ds = testing::SmallDataset(6, 24, 11);
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 300;
  opt.seed = 5;
  Result<ThresholdReport> a = RecommendThresholds(ds, opt);
  Result<ThresholdReport> b = RecommendThresholds(ds, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->recommendations.size(), b->recommendations.size());
  for (std::size_t i = 0; i < a->recommendations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->recommendations[i].st, b->recommendations[i].st);
  }
}

TEST(ThresholdAdvisorTest, DomainScalesDriveRecommendations) {
  // The paper's motivation: growth-rate percents need tiny thresholds,
  // unemployment head-counts need huge ones. On raw (unnormalized) data the
  // advisor must reflect that gap.
  gen::EconomicPanelOptions gopt;
  gopt.indicator = gen::Indicator::kGrowthRate;
  const Dataset growth = gen::MakeEconomicPanel(gopt);
  gopt.indicator = gen::Indicator::kUnemployment;
  const Dataset unemployment = gen::MakeEconomicPanel(gopt);

  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 800;
  opt.min_length = 4;
  Result<ThresholdReport> g = RecommendThresholds(growth, opt);
  Result<ThresholdReport> u = RecommendThresholds(unemployment, opt);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(u.ok());
  EXPECT_GT(u->median_distance, g->median_distance * 100.0)
      << "unemployment distances should dwarf growth-rate distances";
  EXPECT_GT(u->recommendations.front().st, g->recommendations.front().st);
}

TEST(ThresholdAdvisorTest, PercentileSemantics) {
  // Roughly p% of sampled distances fall below the p-percentile threshold.
  const Dataset ds = testing::SmallDataset(10, 40, 23);
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 2000;
  opt.percentiles = {10.0};
  opt.seed = 9;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  const double st = report->recommendations.front().st;
  EXPECT_GT(st, report->min_distance);
  EXPECT_LT(st, report->max_distance);
}

TEST(ThresholdAdvisorTest, LengthRangeIsRespected) {
  const Dataset ds = testing::SmallDataset(6, 30, 3);
  ThresholdAdvisorOptions opt;
  opt.min_length = 5;
  opt.max_length = 8;
  opt.sample_pairs = 200;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->pairs_sampled, 0u);
}

TEST(ThresholdAdvisorTest, InvalidInputs) {
  const Dataset ds = testing::SmallDataset(4, 20, 5);
  EXPECT_FALSE(RecommendThresholds(Dataset(), {}).ok());

  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 0;
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());

  opt = ThresholdAdvisorOptions();
  opt.min_length = 1;
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());

  opt = ThresholdAdvisorOptions();
  opt.min_length = 50;  // longer than any series
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());

  opt = ThresholdAdvisorOptions();
  opt.percentiles = {120.0};
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());
}

TEST(ThresholdAdvisorTest, ConstantDatasetGivesZeroThresholds) {
  Dataset ds("flat");
  ds.Add(TimeSeries("a", std::vector<double>(20, 3.0)));
  ds.Add(TimeSeries("b", std::vector<double>(20, 3.0)));
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 100;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->median_distance, 0.0);
  for (const ThresholdRecommendation& r : report->recommendations) {
    EXPECT_DOUBLE_EQ(r.st, 0.0);
  }
}

}  // namespace
}  // namespace onex
