#include "onex/core/threshold_advisor.h"

#include <cmath>
#include <cstddef>
#include <gtest/gtest.h>
#include <vector>

#include "onex/common/random.h"

#include "onex/gen/economic_panel.h"
#include "onex/gen/generators.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(ThresholdAdvisorTest, RecommendationsAreSortedAndOrderedByPercentile) {
  const Dataset ds = testing::SmallDataset(8, 30, 7);
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 500;
  opt.percentiles = {25.0, 1.0, 10.0, 5.0};
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->recommendations.size(), 4u);
  for (std::size_t i = 1; i < report->recommendations.size(); ++i) {
    EXPECT_LE(report->recommendations[i - 1].st,
              report->recommendations[i].st);
    EXPECT_LE(report->recommendations[i - 1].percentile,
              report->recommendations[i].percentile);
  }
  EXPECT_GT(report->pairs_sampled, 0u);
  EXPECT_LE(report->min_distance, report->median_distance);
  EXPECT_LE(report->median_distance, report->max_distance);
}

TEST(ThresholdAdvisorTest, Deterministic) {
  const Dataset ds = testing::SmallDataset(6, 24, 11);
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 300;
  opt.seed = 5;
  Result<ThresholdReport> a = RecommendThresholds(ds, opt);
  Result<ThresholdReport> b = RecommendThresholds(ds, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->recommendations.size(), b->recommendations.size());
  for (std::size_t i = 0; i < a->recommendations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->recommendations[i].st, b->recommendations[i].st);
  }
}

TEST(ThresholdAdvisorTest, DomainScalesDriveRecommendations) {
  // The paper's motivation: growth-rate percents need tiny thresholds,
  // unemployment head-counts need huge ones. On raw (unnormalized) data the
  // advisor must reflect that gap.
  gen::EconomicPanelOptions gopt;
  gopt.indicator = gen::Indicator::kGrowthRate;
  const Dataset growth = gen::MakeEconomicPanel(gopt);
  gopt.indicator = gen::Indicator::kUnemployment;
  const Dataset unemployment = gen::MakeEconomicPanel(gopt);

  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 800;
  opt.min_length = 4;
  Result<ThresholdReport> g = RecommendThresholds(growth, opt);
  Result<ThresholdReport> u = RecommendThresholds(unemployment, opt);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(u.ok());
  EXPECT_GT(u->median_distance, g->median_distance * 100.0)
      << "unemployment distances should dwarf growth-rate distances";
  EXPECT_GT(u->recommendations.front().st, g->recommendations.front().st);
}

TEST(ThresholdAdvisorTest, PercentileSemantics) {
  // Roughly p% of sampled distances fall below the p-percentile threshold.
  const Dataset ds = testing::SmallDataset(10, 40, 23);
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 2000;
  opt.percentiles = {10.0};
  opt.seed = 9;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  const double st = report->recommendations.front().st;
  EXPECT_GT(st, report->min_distance);
  EXPECT_LT(st, report->max_distance);
}

TEST(ThresholdAdvisorTest, LengthRangeIsRespected) {
  const Dataset ds = testing::SmallDataset(6, 30, 3);
  ThresholdAdvisorOptions opt;
  opt.min_length = 5;
  opt.max_length = 8;
  opt.sample_pairs = 200;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->pairs_sampled, 0u);
}

TEST(ThresholdAdvisorTest, InvalidInputs) {
  const Dataset ds = testing::SmallDataset(4, 20, 5);
  EXPECT_FALSE(RecommendThresholds(Dataset(), {}).ok());

  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 0;
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());

  opt = ThresholdAdvisorOptions();
  opt.min_length = 1;
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());

  opt = ThresholdAdvisorOptions();
  opt.min_length = 50;  // longer than any series
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());

  opt = ThresholdAdvisorOptions();
  opt.percentiles = {120.0};
  EXPECT_FALSE(RecommendThresholds(ds, opt).ok());
}

TEST(ThresholdAdvisorTest, ConstantDatasetGivesZeroThresholds) {
  Dataset ds("flat");
  ds.Add(TimeSeries("a", std::vector<double>(20, 3.0)));
  ds.Add(TimeSeries("b", std::vector<double>(20, 3.0)));
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 100;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->median_distance, 0.0);
  for (const ThresholdRecommendation& r : report->recommendations) {
    EXPECT_DOUBLE_EQ(r.st, 0.0);
  }
}

/// Every numeric field of a report must be finite — the advisor feeds its
/// output straight into BaseBuildOptions::st, where a NaN poisons every
/// grouping comparison.
void CheckNaNFree(const ThresholdReport& report) {
  EXPECT_TRUE(std::isfinite(report.min_distance));
  EXPECT_TRUE(std::isfinite(report.median_distance));
  EXPECT_TRUE(std::isfinite(report.max_distance));
  for (const ThresholdRecommendation& r : report.recommendations) {
    EXPECT_TRUE(std::isfinite(r.st));
    EXPECT_TRUE(std::isfinite(r.percentile));
  }
}

TEST(ThresholdAdvisorTest, Length1SeriesAreSkippedNotSampled) {
  Rng rng(31);
  Dataset ds("mixed");
  ds.Add(TimeSeries("tiny", std::vector<double>{42.0}));
  ds.Add(TimeSeries("long_a", testing::SmoothSeries(&rng, 20)));
  ds.Add(TimeSeries("long_b", testing::SmoothSeries(&rng, 20)));
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 200;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->pairs_sampled, 0u);
  CheckNaNFree(*report);
}

TEST(ThresholdAdvisorTest, OnlyLength1SeriesIsCleanError) {
  Dataset ds("tinies");
  ds.Add(TimeSeries("a", std::vector<double>{1.0}));
  ds.Add(TimeSeries("b", std::vector<double>{2.0}));
  // No admissible subsequence length exists; the advisor must say so, not
  // divide by zero or loop forever.
  const Result<ThresholdReport> report = RecommendThresholds(ds, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ThresholdAdvisorTest, SingleSubsequenceDatasetIsCleanError) {
  // One series of exactly min_length admits exactly one subsequence; every
  // drawn pair is the identical-subsequence case the sampler rejects, so
  // the report must be a clean error after bounded attempts (no hang).
  Dataset ds("one");
  ds.Add(TimeSeries("a", std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 50;
  const Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(ThresholdAdvisorTest, IdenticalSeriesSampleZeroDistancesNaNFree) {
  // All-identical subsequences across series: cross-series pairs at equal
  // offsets have distance exactly 0; everything stays finite.
  std::vector<double> ramp;
  for (int i = 0; i < 24; ++i) ramp.push_back(0.25 * i);
  Dataset ds("twins");
  ds.Add(TimeSeries("a", ramp));
  ds.Add(TimeSeries("b", ramp));
  ds.Add(TimeSeries("c", ramp));
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 500;
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->min_distance, 0.0);
  CheckNaNFree(*report);
}

TEST(ThresholdAdvisorTest, RandomDataIsNaNFree) {
  const Dataset ds = testing::SmallDataset(8, 30, 77);
  ThresholdAdvisorOptions opt;
  opt.sample_pairs = 400;
  opt.percentiles = {0.0, 1.0, 50.0, 99.0, 100.0};
  Result<ThresholdReport> report = RecommendThresholds(ds, opt);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->recommendations.size(), 5u);
  CheckNaNFree(*report);
}

}  // namespace
}  // namespace onex
