/// Property suite for the streaming-maintenance invariants (DESIGN.md §12):
/// after arbitrary randomized extend sequences — including lengths the base
/// has never seen and extends that land while the base sits evicted — the
/// leader-rule ST/2 invariant (exact under kFixedLeader), group-envelope
/// containment (what makes LbKeoghGroup admissible over every member), the
/// membership partition and the drift accounting all hold.
#include "onex/core/incremental.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/core/onex_base.h"
#include "onex/core/query_processor.h"
#include "onex/distance/envelope.h"
#include "onex/distance/euclidean.h"
#include "onex/engine/engine.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

BaseBuildOptions Options(CentroidPolicy policy, double st = 0.25) {
  BaseBuildOptions opt;
  opt.st = st;
  opt.min_length = 4;
  opt.max_length = 0;
  opt.length_step = 2;
  opt.centroid_policy = policy;
  return opt;
}

OnexBase MakeBase(Rng* rng, CentroidPolicy policy, std::size_t num = 5,
                  std::size_t len = 12) {
  Dataset ds("maint");
  for (std::size_t s = 0; s < num; ++s) {
    ds.Add(TimeSeries("s" + std::to_string(s),
                      testing::SmoothSeries(rng, len)));
  }
  return std::move(OnexBase::Build(std::make_shared<const Dataset>(std::move(ds)),
                                   Options(policy)))
      .value();
}

/// Applies a random extend schedule, returning the final base.
OnexBase RandomExtends(Rng* rng, OnexBase base, std::size_t ops) {
  for (std::size_t op = 0; op < ops; ++op) {
    std::vector<SeriesExtension> batch;
    const std::size_t specs = 1 + rng->UniformIndex(2);
    for (std::size_t i = 0; i < specs; ++i) {
      SeriesExtension ext;
      ext.series = rng->UniformIndex(base.dataset().size());
      ext.points = testing::SmoothSeries(rng, 1 + rng->UniformIndex(5));
      batch.push_back(std::move(ext));
    }
    Result<ExtendResult> next = ExtendSeries(base, batch);
    base = std::move(next.value().base);
  }
  return base;
}

/// The membership partition: every admissible subsequence grouped exactly
/// once, refs valid against the dataset.
void CheckPartition(const OnexBase& base) {
  std::set<SubseqRef> seen;
  for (const LengthClass& cls : base.length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        ASSERT_TRUE(base.dataset()
                        .CheckRange(ref.series, ref.start, ref.length)
                        .ok())
            << ref.ToString();
        EXPECT_EQ(ref.length, cls.length);
        EXPECT_TRUE(seen.insert(ref).second) << ref.ToString();
      }
    }
  }
  EXPECT_EQ(seen.size(), base.TotalMembers());
  EXPECT_EQ(base.TotalMembers(),
            base.dataset().CountSubsequences(
                base.options().min_length, base.dataset().MaxLength(),
                base.options().length_step, base.options().stride));
}

/// Group-envelope containment: every member's values lie pointwise inside
/// the group's min/max envelope — the property that makes one LbKeoghGroup
/// evaluation an admissible bound for every member (DESIGN.md §7.3).
void CheckEnvelopeContainment(const OnexBase& base) {
  for (const LengthClass& cls : base.length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      const EnvelopeView env = g.envelope();
      for (const SubseqRef& ref : g.members()) {
        const std::span<const double> vals = ref.Resolve(base.dataset());
        for (std::size_t i = 0; i < cls.length; ++i) {
          EXPECT_LE(env.lower[i], vals[i] + 1e-12) << ref.ToString();
          EXPECT_GE(env.upper[i], vals[i] - 1e-12) << ref.ToString();
        }
      }
    }
  }
}

class MaintenancePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MaintenancePropertyTest, FixedLeaderInvariantSurvivesExtendSchedules) {
  Rng rng(GetParam());
  OnexBase base = MakeBase(&rng, CentroidPolicy::kFixedLeader);
  base = RandomExtends(&rng, std::move(base), 6);

  const double radius = base.options().st / 2.0;
  for (const LengthClass& cls : base.length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        EXPECT_LE(NormalizedEuclidean(g.centroid_span(),
                                      ref.Resolve(base.dataset())),
                  radius + 1e-9)
            << ref.ToString();
      }
    }
  }
  // The exact invariant means zero drift, and the report must agree.
  for (const LengthClassDrift& d : ComputeDrift(base)) {
    EXPECT_EQ(d.outliers, 0u) << "length " << d.length;
  }
  CheckPartition(base);
}

TEST_P(MaintenancePropertyTest, EnvelopesContainEveryMemberForAllPolicies) {
  for (const CentroidPolicy policy :
       {CentroidPolicy::kFixedLeader, CentroidPolicy::kRunningMean,
        CentroidPolicy::kRunningMeanRepair}) {
    Rng rng(GetParam() + static_cast<std::uint64_t>(policy) * 97);
    OnexBase base = MakeBase(&rng, policy);
    base = RandomExtends(&rng, std::move(base), 5);
    CheckEnvelopeContainment(base);
    CheckPartition(base);
  }
}

TEST_P(MaintenancePropertyTest, ExtendPastEveryKnownLengthOpensFreshClasses) {
  Rng rng(GetParam() + 31);
  OnexBase base = MakeBase(&rng, CentroidPolicy::kRunningMean, 4, 10);
  const std::size_t old_max = base.dataset().MaxLength();
  ASSERT_FALSE(base.FindLengthClass(old_max + 2).ok());

  // Grow one series far past anything the base has seen: classes for the
  // new lengths appear, hold only that series' tail subsequences, and every
  // invariant still holds.
  const std::size_t target = rng.UniformIndex(base.dataset().size());
  Result<ExtendResult> grown =
      ExtendSeries(base, target, testing::SmoothSeries(&rng, 8));
  ASSERT_TRUE(grown.ok()) << grown.status();
  base = std::move(grown->base);

  Result<const LengthClass*> fresh = base.FindLengthClass(old_max + 2);
  ASSERT_TRUE(fresh.ok());
  for (const SimilarityGroup& g : (*fresh)->groups) {
    for (const SubseqRef& ref : g.members()) {
      EXPECT_EQ(ref.series, target);
    }
  }
  // The extend reported the classes it touched, fresh lengths included.
  bool reported = false;
  for (const LengthClassDrift& d : grown->drift) {
    reported = reported || d.length == old_max + 2;
  }
  EXPECT_TRUE(reported);
  CheckPartition(base);
  CheckEnvelopeContainment(base);
}

TEST_P(MaintenancePropertyTest, RegroupPreservesPartitionAndRestoresInvariant) {
  for (const CentroidPolicy policy :
       {CentroidPolicy::kFixedLeader, CentroidPolicy::kRunningMean}) {
    Rng rng(GetParam() + 59);
    OnexBase base = MakeBase(&rng, policy);
    base = RandomExtends(&rng, std::move(base), 6);
    const std::size_t members_before = base.TotalMembers();

    std::vector<std::size_t> lengths;
    for (const LengthClass& cls : base.length_classes()) {
      lengths.push_back(cls.length);
    }
    Result<OnexBase> regrouped = RegroupLengthClasses(base, lengths);
    ASSERT_TRUE(regrouped.ok()) << regrouped.status();

    EXPECT_EQ(regrouped->TotalMembers(), members_before);
    CheckPartition(*regrouped);
    CheckEnvelopeContainment(*regrouped);
    if (policy == CentroidPolicy::kFixedLeader) {
      for (const LengthClassDrift& d : ComputeDrift(*regrouped)) {
        EXPECT_EQ(d.outliers, 0u);
      }
    }
  }
}

TEST_P(MaintenancePropertyTest, ExtendWhileEvictedSurvivesRegistryRebuild) {
  // The registry path: a base pushed out by the LRU budget receives tail
  // points; the transparent rebuild must fold them in with the frozen
  // normalization, and the rebuilt base must satisfy every maintenance
  // invariant — including for lengths the original base never saw.
  Rng rng(GetParam() + 83);
  Engine engine;
  Dataset ds("live");
  for (std::size_t s = 0; s < 4; ++s) {
    ds.Add(TimeSeries("feed_" + std::to_string(s),
                      testing::SmoothSeries(&rng, 12)));
  }
  ASSERT_TRUE(engine.LoadDataset("live", std::move(ds)).ok());
  BaseBuildOptions opt = Options(CentroidPolicy::kFixedLeader);
  ASSERT_TRUE(engine.Prepare("live", opt).ok());

  // Evict by shrinking the budget to one byte.
  engine.registry().SetPreparedBudget(1);
  {
    Result<std::shared_ptr<const PreparedDataset>> snap = engine.Get("live");
    ASSERT_TRUE(snap.ok());
    ASSERT_FALSE((*snap)->prepared());  // evicted, not dropped
  }

  // Extend while evicted: a long tail that also opens unseen lengths (8
  // points keeps 12 + 8 = 20 on the build's step-2 length grid).
  const std::vector<double> tail = testing::SmoothSeries(&rng, 8);
  Result<Engine::ExtendSummary> summary = engine.ExtendSeries("live", 0, tail);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->points_appended, tail.size());
  EXPECT_EQ(summary->new_members, 0u);  // base not resident: nothing grouped

  // Lift the budget and query: the transparent rebuild runs and must cover
  // the extended tail.
  engine.registry().SetPreparedBudget(0);
  Result<std::shared_ptr<const PreparedDataset>> prepared =
      engine.registry().GetPrepared("live");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  const OnexBase& base = *(*prepared)->base;
  EXPECT_EQ(base.dataset()[0].length(), 12u + tail.size());
  CheckPartition(base);
  CheckEnvelopeContainment(base);
  ASSERT_TRUE(base.FindLengthClass(12 + tail.size()).ok());

  // The rebuilt normalized tail must equal what a resident extend would
  // have produced: the frozen parameters applied to the raw points.
  const NormalizationParams& params = (*prepared)->norm_params;
  const TimeSeries& norm0 = (*(*prepared)->normalized)[0];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_NEAR(norm0[12 + i], NormalizeValue(params, 0, tail[i]), 1e-12);
  }

  // And the tail is searchable exactly.
  QuerySpec spec;
  spec.series = 0;
  spec.start = 12;
  spec.length = tail.size();
  QueryOptions qopt;
  qopt.exhaustive = true;
  Result<MatchResult> match = engine.SimilaritySearch("live", spec, qopt);
  ASSERT_TRUE(match.ok()) << match.status();
  EXPECT_NEAR(match->match.normalized_dtw, 0.0, 1e-9);
}

/// Regression: a length grid that outruns the data (explicit max_length and
/// stride leaving grid lengths with zero subsequences) must never install a
/// 0-member length class, and the drift report over such a base must stay
/// finite — a 0-member class reports fraction 0.0, never NaN or inf.
TEST(DriftEmptyClassTest, LengthGridBeyondTheDataStaysFinite) {
  Rng rng(7);
  Dataset ds("sparse");
  ds.Add(TimeSeries("short_a", testing::SmoothSeries(&rng, 8)));
  ds.Add(TimeSeries("short_b", testing::SmoothSeries(&rng, 9)));

  BaseBuildOptions opt;
  opt.st = 0.25;
  opt.min_length = 4;
  opt.max_length = 24;  // grid lengths 10..24 have no subsequences at all
  opt.length_step = 2;
  opt.stride = 3;
  Result<OnexBase> built =
      OnexBase::Build(std::make_shared<const Dataset>(std::move(ds)), opt);
  ASSERT_TRUE(built.ok()) << built.status();
  const OnexBase& base = *built;

  for (const LengthClass& cls : base.length_classes()) {
    EXPECT_GT(cls.total_members, 0u) << "length " << cls.length;
    EXPECT_LE(cls.length, 9u);
  }
  const std::vector<LengthClassDrift> drift = ComputeDrift(base);
  EXPECT_EQ(drift.size(), base.length_classes().size());
  for (const LengthClassDrift& d : drift) {
    EXPECT_GE(d.members, 1u);
    EXPECT_TRUE(std::isfinite(d.fraction())) << "length " << d.length;
    EXPECT_GE(d.fraction(), 0.0);
    EXPECT_LE(d.fraction(), 1.0);
  }

  // Belt assert on the accessor itself: the 0-member case is defined as
  // exactly 0.0, not 0/0.
  LengthClassDrift empty;
  empty.length = 24;
  EXPECT_EQ(empty.fraction(), 0.0);
  empty.outliers = 3;  // inconsistent input still must not divide by zero
  EXPECT_EQ(empty.fraction(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenancePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace onex
