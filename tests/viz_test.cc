#include "onex/viz/chart_data.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "onex/distance/dtw.h"
#include "onex/viz/ascii_canvas.h"
#include "onex/viz/charts.h"
#include "onex/viz/exporters.h"

namespace onex::viz {
namespace {

MultiLineChartData SampleMultiLine() {
  const std::vector<double> a{0.0, 1.0, 2.0, 1.0};
  const std::vector<double> b{0.0, 0.0, 1.0, 2.0, 1.0};
  const DtwAlignment al = DtwWithPath(a, b);
  return BuildMultiLineChart("q", a, "m", b, al.path);
}

TEST(AsciiCanvasTest, SetAndRender) {
  AsciiCanvas canvas(4, 2);
  canvas.Set(0, 0, 'a');
  canvas.Set(3, 1, 'z');
  EXPECT_EQ(canvas.Render(), "a\n   z\n");
  EXPECT_EQ(canvas.At(0, 0), 'a');
  EXPECT_EQ(canvas.At(2, 1), ' ');
}

TEST(AsciiCanvasTest, OutOfBoundsWritesAreClipped) {
  AsciiCanvas canvas(2, 2);
  canvas.Set(5, 5, 'x');  // silently ignored
  canvas.Set(2, 0, 'x');
  EXPECT_EQ(canvas.Render(), "\n\n");
  EXPECT_EQ(canvas.At(9, 9), ' ');
}

TEST(AsciiCanvasTest, PlotSeriesSpansCanvas) {
  AsciiCanvas canvas(10, 5);
  canvas.PlotSeries(std::vector<double>{0.0, 1.0}, 0.0, 1.0, '*');
  // First point at bottom-left, last at top-right.
  EXPECT_EQ(canvas.At(0, 4), '*');
  EXPECT_EQ(canvas.At(9, 0), '*');
}

TEST(AsciiCanvasTest, VLine) {
  AsciiCanvas canvas(3, 5);
  canvas.VLine(1, 3, 1, '|');  // reversed order still works
  EXPECT_EQ(canvas.At(1, 1), '|');
  EXPECT_EQ(canvas.At(1, 2), '|');
  EXPECT_EQ(canvas.At(1, 3), '|');
  EXPECT_EQ(canvas.At(1, 0), ' ');
}

TEST(MultiLineChartTest, LinksAreValidIndices) {
  const MultiLineChartData data = SampleMultiLine();
  ASSERT_FALSE(data.links.empty());
  for (const auto& [i, j] : data.links) {
    EXPECT_LT(i, data.series_a.size());
    EXPECT_LT(j, data.series_b.size());
  }
}

TEST(MultiLineChartTest, JsonShape) {
  const json::Value v = SampleMultiLine().ToJson();
  EXPECT_EQ(v["type"].as_string(), "multi_line");
  EXPECT_EQ(v["series_a"].as_array().size(), 4u);
  EXPECT_EQ(v["series_b"].as_array().size(), 5u);
  EXPECT_EQ(v["links"].as_array().size(), SampleMultiLine().links.size());
  // Round-trips through the parser.
  EXPECT_TRUE(json::Parse(v.Dump()).ok());
}

TEST(MultiLineChartTest, RenderContainsLegend) {
  const std::string out = RenderMultiLineChart(SampleMultiLine(), 40, 8);
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(RadialChartTest, AnglesCoverTheCircle) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const RadialChartData data = BuildRadialChart("a", a, "b", a);
  ASSERT_EQ(data.points_a.size(), 4u);
  EXPECT_DOUBLE_EQ(data.points_a.front().angle, 0.0);
  for (std::size_t i = 1; i < data.points_a.size(); ++i) {
    EXPECT_GT(data.points_a[i].angle, data.points_a[i - 1].angle);
    EXPECT_LT(data.points_a[i].angle, 2.0 * 3.14159265358979 + 1e-9);
  }
}

TEST(RadialChartTest, RadiiRespectInnerRadiusAndSharedScale) {
  const std::vector<double> a{0.0, 10.0};
  const std::vector<double> b{5.0, 5.0};
  const RadialChartData data = BuildRadialChart("a", a, "b", b, 0.25);
  // Shared scale: min value 0 -> 0.25, max value 10 -> 1.25.
  EXPECT_DOUBLE_EQ(data.points_a[0].radius, 0.25);
  EXPECT_DOUBLE_EQ(data.points_a[1].radius, 1.25);
  EXPECT_DOUBLE_EQ(data.points_b[0].radius, 0.75);
}

TEST(RadialChartTest, RenderProducesSquareChart) {
  const std::vector<double> a{1.0, 2.0, 1.5, 0.5};
  const RadialChartData data = BuildRadialChart("a", a, "b", a);
  const std::string out = RenderRadialChart(data, 21);
  EXPECT_NE(out.find("radial"), std::string::npos);
}

TEST(ConnectedScatterTest, IdenticalSeriesSitOnDiagonal) {
  const std::vector<double> a{0.2, 0.4, 0.6, 0.8};
  const DtwAlignment al = DtwWithPath(a, a);
  const ConnectedScatterData data =
      BuildConnectedScatter("a", a, "a2", a, al.path);
  EXPECT_DOUBLE_EQ(data.diagonal_deviation, 0.0);
  for (const auto& [x, y] : data.points) EXPECT_DOUBLE_EQ(x, y);
}

TEST(ConnectedScatterTest, DeviationGrowsWithMismatch) {
  const std::vector<double> a{0.0, 0.0, 0.0, 0.0};
  const std::vector<double> close{0.05, 0.0, 0.05, 0.0};
  const std::vector<double> far{1.0, 1.0, 1.0, 1.0};
  const ConnectedScatterData near_data = BuildConnectedScatter(
      "a", a, "b", close, DtwWithPath(a, close).path);
  const ConnectedScatterData far_data =
      BuildConnectedScatter("a", a, "b", far, DtwWithPath(a, far).path);
  EXPECT_LT(near_data.diagonal_deviation, far_data.diagonal_deviation);
}

TEST(ConnectedScatterTest, PointsFollowWarpingPathOrder) {
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{0.0, 0.5, 1.0};
  const WarpingPath path = DtwWithPath(a, b).path;
  const ConnectedScatterData data =
      BuildConnectedScatter("a", a, "b", b, path);
  ASSERT_EQ(data.points.size(), path.size());
  for (std::size_t k = 0; k < path.size(); ++k) {
    EXPECT_DOUBLE_EQ(data.points[k].first, a[path[k].first]);
    EXPECT_DOUBLE_EQ(data.points[k].second, b[path[k].second]);
  }
}

TEST(SeasonalViewTest, SegmentsAlternateColors) {
  SeasonalPattern p;
  p.length = 4;
  p.occurrences = {{0, 0, 4}, {0, 8, 4}, {0, 16, 4}};
  p.representative = {0.0, 1.0, 1.0, 0.0};
  const SeasonalViewData data =
      BuildSeasonalView("s", std::vector<double>(24, 0.0), {p});
  ASSERT_EQ(data.patterns.size(), 1u);
  const auto& segs = data.patterns.front().segments;
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].color, 0);
  EXPECT_EQ(segs[1].color, 1);
  EXPECT_EQ(segs[2].color, 0);
}

TEST(SeasonalViewTest, RenderMarksSegments) {
  SeasonalPattern p;
  p.length = 6;
  p.occurrences = {{0, 0, 6}, {0, 12, 6}};
  p.representative = std::vector<double>(6, 0.5);
  std::vector<double> series(24);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<double>(i % 6);
  }
  const SeasonalViewData data = BuildSeasonalView("hh", series, {p});
  const std::string out = RenderSeasonalView(data, 24);
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find('g'), std::string::npos);
  EXPECT_NE(out.find("len=6"), std::string::npos);
}

TEST(SparklineTest, WidthAndExtremes) {
  std::vector<double> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(static_cast<double>(i));
  const std::string line = RenderSparkline(xs, 16);
  // 16 glyphs, each 3 UTF-8 bytes.
  EXPECT_EQ(line.size(), 16u * 3u);
  EXPECT_EQ(line.substr(0, 3), "▁");       // lowest block first
  EXPECT_EQ(line.substr(line.size() - 3), "█");  // full block last
}

TEST(SparklineTest, DegenerateInputs) {
  EXPECT_EQ(RenderSparkline(std::vector<double>{}, 10), "");
  EXPECT_FALSE(RenderSparkline(std::vector<double>{1.0}, 10).empty());
  // Constant input renders without dividing by zero.
  EXPECT_FALSE(
      RenderSparkline(std::vector<double>(8, 3.0), 8).empty());
}

TEST(OverviewPaneTest, BuildAndRender) {
  std::vector<OverviewEntry> entries(2);
  entries[0].length = 6;
  entries[0].cardinality = 10;
  entries[0].intensity = 1.0;
  entries[0].representative = {0.0, 0.5, 1.0, 0.5, 0.0, 0.2};
  entries[1].length = 6;
  entries[1].cardinality = 5;
  entries[1].intensity = 0.5;
  entries[1].representative = {1.0, 0.5, 0.0, 0.5, 1.0, 0.8};
  const OverviewPaneData data = BuildOverviewPane(entries);
  ASSERT_EQ(data.cells.size(), 2u);
  EXPECT_EQ(data.cells[0].cardinality, 10u);
  const std::string out = RenderOverviewPane(data);
  EXPECT_NE(out.find("n=10"), std::string::npos);
  EXPECT_NE(out.find("intensity=0.50"), std::string::npos);
  const json::Value v = data.ToJson();
  EXPECT_EQ(v["cells"].as_array().size(), 2u);
}

TEST(ExportersTest, MultiLineCsv) {
  std::ostringstream out;
  ASSERT_TRUE(WriteMultiLineCsv(SampleMultiLine(), out).ok());
  const std::string csv = out.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "index_a,value_a,index_b,value_b");
  // One data row per link plus header.
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, SampleMultiLine().links.size() + 1);
}

TEST(ExportersTest, MultiLineCsvRejectsBadLinks) {
  MultiLineChartData data = SampleMultiLine();
  data.links.push_back({99, 0});
  std::ostringstream out;
  EXPECT_EQ(WriteMultiLineCsv(data, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ExportersTest, RadialAndScatterAndSeasonalCsv) {
  const std::vector<double> a{0.1, 0.2, 0.3};
  const RadialChartData radial = BuildRadialChart("x", a, "y", a);
  std::ostringstream r;
  ASSERT_TRUE(WriteRadialCsv(radial, r).ok());
  EXPECT_NE(r.str().find("series,angle,radius"), std::string::npos);

  const ConnectedScatterData scatter =
      BuildConnectedScatter("x", a, "y", a, DtwWithPath(a, a).path);
  std::ostringstream s;
  ASSERT_TRUE(WriteConnectedScatterCsv(scatter, s).ok());
  EXPECT_NE(s.str().find("x,y"), std::string::npos);

  SeasonalPattern p;
  p.length = 2;
  p.occurrences = {{0, 0, 2}, {0, 4, 2}};
  p.representative = {0.0, 1.0};
  const SeasonalViewData seasonal =
      BuildSeasonalView("s", std::vector<double>(8, 0.0), {p});
  std::ostringstream t;
  ASSERT_TRUE(WriteSeasonalCsv(seasonal, t).ok());
  EXPECT_NE(t.str().find("pattern,start,length,color"), std::string::npos);
  EXPECT_NE(t.str().find("0,4,2,1"), std::string::npos);
}

}  // namespace
}  // namespace onex::viz
