#include "onex/distance/envelope.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "test_util.h"

namespace onex {
namespace {

/// Reference O(n*w) envelope for validating the deque implementation.
Envelope BruteEnvelope(const std::vector<double>& x, int window) {
  Envelope env;
  const std::size_t n = x.size();
  env.lower.resize(n);
  env.upper.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo, hi;
    if (window < 0 || static_cast<std::size_t>(window) >= n) {
      lo = 0;
      hi = n - 1;
    } else {
      const std::size_t w = static_cast<std::size_t>(window);
      lo = i >= w ? i - w : 0;
      hi = std::min(i + w, n - 1);
    }
    env.lower[i] = *std::min_element(x.begin() + lo, x.begin() + hi + 1);
    env.upper[i] = *std::max_element(x.begin() + lo, x.begin() + hi + 1);
  }
  return env;
}

TEST(EnvelopeTest, EmptyInput) {
  const Envelope env = ComputeKeoghEnvelope(std::vector<double>{}, 2);
  EXPECT_TRUE(env.empty());
  EXPECT_EQ(env.size(), 0u);
}

TEST(EnvelopeTest, WindowZeroIsIdentity) {
  const std::vector<double> x{3.0, 1.0, 4.0, 1.0, 5.0};
  const Envelope env = ComputeKeoghEnvelope(x, 0);
  EXPECT_EQ(env.lower, x);
  EXPECT_EQ(env.upper, x);
}

TEST(EnvelopeTest, NegativeWindowIsGlobalMinMax) {
  const std::vector<double> x{3.0, 1.0, 4.0, 1.0, 5.0};
  const Envelope env = ComputeKeoghEnvelope(x, -1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(env.lower[i], 1.0);
    EXPECT_DOUBLE_EQ(env.upper[i], 5.0);
  }
}

TEST(EnvelopeTest, KnownSmallWindow) {
  const std::vector<double> x{0.0, 2.0, 1.0, 3.0};
  const Envelope env = ComputeKeoghEnvelope(x, 1);
  EXPECT_EQ(env.upper, (std::vector<double>{2.0, 2.0, 3.0, 3.0}));
  EXPECT_EQ(env.lower, (std::vector<double>{0.0, 0.0, 1.0, 1.0}));
}

TEST(EnvelopeTest, WindowLargerThanSeriesIsGlobal) {
  const std::vector<double> x{2.0, 7.0, 5.0};
  const Envelope env = ComputeKeoghEnvelope(x, 100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(env.lower[i], 2.0);
    EXPECT_DOUBLE_EQ(env.upper[i], 7.0);
  }
}

TEST(EnvelopeTest, AccumulateFromEmpty) {
  Envelope acc;
  const std::vector<double> x{1.0, 5.0};
  AccumulateEnvelope(&acc, x);
  EXPECT_EQ(acc.lower, x);
  EXPECT_EQ(acc.upper, x);
}

TEST(EnvelopeTest, AccumulateWidensPointwise) {
  Envelope acc;
  AccumulateEnvelope(&acc, std::vector<double>{1.0, 5.0, 3.0});
  AccumulateEnvelope(&acc, std::vector<double>{2.0, 4.0, 6.0});
  AccumulateEnvelope(&acc, std::vector<double>{0.0, 5.0, 4.0});
  EXPECT_EQ(acc.lower, (std::vector<double>{0.0, 4.0, 3.0}));
  EXPECT_EQ(acc.upper, (std::vector<double>{2.0, 5.0, 6.0}));
}

class EnvelopePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(EnvelopePropertyTest, MatchesBruteForce) {
  const auto [seed, window] = GetParam();
  Rng rng(seed);
  const std::size_t n = 1 + rng.UniformIndex(80);
  const std::vector<double> x = testing::RandomSeries(&rng, n);
  const Envelope fast = ComputeKeoghEnvelope(x, window);
  const Envelope slow = BruteEnvelope(x, window);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(fast.lower[i], slow.lower[i]) << "i=" << i;
    EXPECT_DOUBLE_EQ(fast.upper[i], slow.upper[i]) << "i=" << i;
  }
}

TEST_P(EnvelopePropertyTest, EnvelopeContainsSeries) {
  const auto [seed, window] = GetParam();
  Rng rng(seed + 1000);
  const std::size_t n = 1 + rng.UniformIndex(60);
  const std::vector<double> x = testing::RandomSeries(&rng, n);
  const Envelope env = ComputeKeoghEnvelope(x, window);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(env.lower[i], x[i]);
    EXPECT_GE(env.upper[i], x[i]);
  }
}

TEST_P(EnvelopePropertyTest, WiderWindowsNest) {
  const auto [seed, window] = GetParam();
  if (window < 0) return;  // global case has nothing wider
  Rng rng(seed + 2000);
  const std::size_t n = 2 + rng.UniformIndex(50);
  const std::vector<double> x = testing::RandomSeries(&rng, n);
  const Envelope narrow = ComputeKeoghEnvelope(x, window);
  const Envelope wide = ComputeKeoghEnvelope(x, window + 3);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(wide.lower[i], narrow.lower[i]);
    EXPECT_GE(wide.upper[i], narrow.upper[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWindows, EnvelopePropertyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values(-1, 0, 1, 2, 5, 17)));

}  // namespace
}  // namespace onex
