#include "onex/json/json.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace onex::json {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value::MakeArray().is_array());
  EXPECT_TRUE(Value::MakeObject().is_object());
}

TEST(JsonValueTest, AccessorsWithDefinedFallbacks) {
  EXPECT_FALSE(Value(3.0).as_bool());
  EXPECT_DOUBLE_EQ(Value("x").as_number(), 0.0);
  EXPECT_TRUE(Value(1.0).as_string().empty());
}

TEST(JsonValueTest, ObjectSetAndIndex) {
  Value obj = Value::MakeObject();
  obj.Set("a", 1.5);
  obj.Set("b", "text");
  EXPECT_DOUBLE_EQ(obj["a"].as_number(), 1.5);
  EXPECT_EQ(obj["b"].as_string(), "text");
  EXPECT_TRUE(obj["missing"].is_null());
  EXPECT_TRUE(Value(1.0)["key"].is_null());  // non-object index
}

TEST(JsonValueTest, ArrayAppendAndIndex) {
  Value arr = Value::MakeArray();
  arr.Append(1);
  arr.Append("two");
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_EQ(arr[1].as_string(), "two");
  EXPECT_TRUE(arr[5].is_null());
}

TEST(JsonValueTest, NumberArrayHelper) {
  const Value arr = Value::NumberArray({1.0, 2.5, -3.0});
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(arr[2].as_number(), -3.0);
}

TEST(JsonDumpTest, Scalars) {
  EXPECT_EQ(Value().Dump(), "null");
  EXPECT_EQ(Value(true).Dump(), "true");
  EXPECT_EQ(Value(false).Dump(), "false");
  EXPECT_EQ(Value(3.5).Dump(), "3.5");
  EXPECT_EQ(Value(42).Dump(), "42");
  EXPECT_EQ(Value("hi").Dump(), "\"hi\"");
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  EXPECT_EQ(Value("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(Value("line\nbreak\t").Dump(), "\"line\\nbreak\\t\"");
  EXPECT_EQ(Value(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
  EXPECT_EQ(Value("back\\slash").Dump(), "\"back\\\\slash\"");
}

TEST(JsonDumpTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Value(std::nan("")).Dump(), "null");
}

TEST(JsonDumpTest, CompactObjectIsSortedAndTight) {
  Value obj = Value::MakeObject();
  obj.Set("b", 2);
  obj.Set("a", 1);
  EXPECT_EQ(obj.Dump(), "{\"a\":1,\"b\":2}");
}

TEST(JsonDumpTest, PrettyPrint) {
  Value obj = Value::MakeObject();
  obj.Set("k", Value::NumberArray({1.0}));
  EXPECT_EQ(obj.Dump(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->as_bool());
  EXPECT_FALSE(Parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Parse("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("-1e3")->as_number(), -1000.0);
  EXPECT_EQ(Parse("\"str\"")->as_string(), "str");
}

TEST(JsonParseTest, NestedStructures) {
  Result<Value> v = Parse(R"({"a":[1,2,{"b":null}],"c":{"d":true}})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ((*v)["a"][1].as_number(), 2.0);
  EXPECT_TRUE((*v)["a"][2]["b"].is_null());
  EXPECT_TRUE((*v)["c"]["d"].as_bool());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  Result<Value> v = Parse("  { \"a\" :\n[ 1 , 2 ]\t} ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)["a"].as_array().size(), 2u);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b")")->as_string(), "a\"b");
  EXPECT_EQ(Parse(R"("tab\there")")->as_string(), "tab\there");
  EXPECT_EQ(Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Parse(R"("é")")->as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_TRUE(Parse("[]")->as_array().empty());
  EXPECT_TRUE(Parse("{}")->as_object().empty());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("{'a':1}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("1.2.3").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("\"bad\\escape\"").ok());
  EXPECT_FALSE(Parse("\"short\\u12\"").ok());
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("{} extra").ok());
  EXPECT_FALSE(Parse("[1] ]").ok());
}

TEST(JsonParseTest, DepthLimitStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  Result<Value> v = Parse(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

TEST(JsonRoundTripTest, DumpThenParsePreservesValue) {
  Value obj = Value::MakeObject();
  obj.Set("name", "onex");
  obj.Set("pi", 3.14159265358979);
  obj.Set("flags", [] {
    Value a = Value::MakeArray();
    a.Append(true);
    a.Append(Value());
    a.Append(-0.125);
    return a;
  }());
  Value inner = Value::MakeObject();
  inner.Set("deep", "value with \"quotes\" and \n newline");
  obj.Set("inner", std::move(inner));

  Result<Value> back = Parse(obj.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, obj);
  // Pretty-printed form round-trips too.
  Result<Value> pretty = Parse(obj.Dump(2));
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(*pretty, obj);
}

TEST(JsonRoundTripTest, DoublesSurviveExactly) {
  for (const double v : {0.1, 1e-300, 1e300, -2.5e-7, 123456789.123456789}) {
    Result<Value> back = Parse(Value(v).Dump());
    ASSERT_TRUE(back.ok());
    EXPECT_DOUBLE_EQ(back->as_number(), v);
  }
}

TEST(JsonEscapeTest, EscapeString) {
  EXPECT_EQ(EscapeString("plain"), "plain");
  EXPECT_EQ(EscapeString("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(EscapeString("\r\n"), "\\r\\n");
}

}  // namespace
}  // namespace onex::json
