#include "onex/ts/ucr_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace onex {
namespace {

TEST(UcrIoTest, ParsesWhitespaceSeparated) {
  std::istringstream in("1 0.5 0.6 0.7\n2 1.0 1.1 1.2\n");
  Result<Dataset> ds = ReadUcrStream(in, "demo");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ((*ds)[0].label(), "1");
  EXPECT_EQ((*ds)[0].length(), 3u);
  EXPECT_DOUBLE_EQ((*ds)[1][2], 1.2);
  EXPECT_EQ((*ds)[0].name(), "demo_0");
}

TEST(UcrIoTest, ParsesCommaSeparated) {
  std::istringstream in("-1,0.5,0.6\n1,0.9,1.0\n");
  Result<Dataset> ds = ReadUcrStream(in, "csv");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ((*ds)[0].label(), "-1");
  EXPECT_DOUBLE_EQ((*ds)[0][1], 0.6);
}

TEST(UcrIoTest, SupportsRaggedRows) {
  std::istringstream in("0 1 2 3 4\n0 1 2\n");
  Result<Dataset> ds = ReadUcrStream(in, "ragged");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)[0].length(), 4u);
  EXPECT_EQ((*ds)[1].length(), 2u);
}

TEST(UcrIoTest, SkipsBlankLinesAndComments) {
  std::istringstream in("# header comment\n\n1 2 3\n   \n2 4 5\n");
  Result<Dataset> ds = ReadUcrStream(in, "c");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
}

TEST(UcrIoTest, NoLabelMode) {
  std::istringstream in("0.5 0.6 0.7\n");
  UcrReadOptions opt;
  opt.first_column_is_label = false;
  Result<Dataset> ds = ReadUcrStream(in, "nolabel", opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)[0].length(), 3u);
  EXPECT_TRUE((*ds)[0].label().empty());
  EXPECT_DOUBLE_EQ((*ds)[0][0], 0.5);
}

TEST(UcrIoTest, RejectsMalformedNumbers) {
  std::istringstream in("1 0.5 oops 0.7\n");
  Result<Dataset> ds = ReadUcrStream(in, "bad");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
}

TEST(UcrIoTest, RejectsLabelOnlyRow) {
  std::istringstream in("1\n");
  Result<Dataset> ds = ReadUcrStream(in, "short");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
}

TEST(UcrIoTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_FALSE(ReadUcrStream(in, "empty").ok());
  std::istringstream comments("# only\n# comments\n");
  EXPECT_FALSE(ReadUcrStream(comments, "empty").ok());
}

TEST(UcrIoTest, EnforcesMinLength) {
  std::istringstream in("1 2 3\n");
  UcrReadOptions opt;
  opt.min_length = 5;
  Result<Dataset> ds = ReadUcrStream(in, "tooshort", opt);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
}

TEST(UcrIoTest, MaxSeriesCapsReading) {
  std::istringstream in("1 1 1\n2 2 2\n3 3 3\n");
  UcrReadOptions opt;
  opt.max_series = 2;
  Result<Dataset> ds = ReadUcrStream(in, "capped", opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
}

TEST(UcrIoTest, WriteThenReadRoundTrips) {
  Dataset ds("roundtrip");
  ds.Add(TimeSeries("a", {0.125, -3.5, 2.75}, "1"));
  ds.Add(TimeSeries("b", {1e-9, 1e9}, "2"));
  std::ostringstream out;
  ASSERT_TRUE(WriteUcrStream(ds, out).ok());
  std::istringstream in(out.str());
  Result<Dataset> back = ReadUcrStream(in, "roundtrip");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].label(), "1");
  ASSERT_EQ((*back)[0].length(), 3u);
  EXPECT_DOUBLE_EQ((*back)[0][0], 0.125);
  EXPECT_DOUBLE_EQ((*back)[0][1], -3.5);
  EXPECT_DOUBLE_EQ((*back)[1][1], 1e9);
}

TEST(UcrIoTest, WriteUsesDefaultLabelWhenEmpty) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {1.0, 2.0}));  // no label
  std::ostringstream out;
  ASSERT_TRUE(WriteUcrStream(ds, out).ok());
  EXPECT_EQ(out.str().substr(0, 2), "0 ");
}

TEST(UcrIoTest, FileRoundTripAndNaming) {
  const std::string path = ::testing::TempDir() + "/onex_ucr_test.tsv";
  Dataset ds("ignored");
  ds.Add(TimeSeries("a", {1.0, 2.0, 3.0}, "7"));
  ASSERT_TRUE(WriteUcrFile(ds, path).ok());
  Result<Dataset> back = ReadUcrFile(path);
  ASSERT_TRUE(back.ok());
  // Dataset named after the file's basename sans extension.
  EXPECT_EQ(back->name(), "onex_ucr_test");
  EXPECT_EQ((*back)[0].label(), "7");
  std::remove(path.c_str());
}

TEST(UcrIoTest, MissingFileIsIoError) {
  Result<Dataset> ds = ReadUcrFile("/nonexistent/path/file.tsv");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

TEST(UcrIoTest, UnwritablePathIsIoError) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {1.0, 2.0}));
  EXPECT_EQ(WriteUcrFile(ds, "/nonexistent/dir/out.tsv").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace onex
