/// Crash-injection harness for the durability layer (DESIGN.md §13).
///
/// The contract under test: once a mutation is acknowledged, a crash at ANY
/// later byte of WAL history recovers a slot whose fixed query battery —
/// raw and normalized values, group membership class for class, per-class
/// drift, MATCH/KNN distances — is bit-identical to the pre-crash in-memory
/// engine; a crash mid-append loses exactly the one un-acknowledged write
/// and nothing else; and corrupted logs (random flips, truncations,
/// duplicated tails) recover either a clean prefix of true history or a
/// structured error — never UB, a hang, or a silently different base. Run
/// under ASan and TSan in CI.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/common/string_utils.h"
#include "onex/core/incremental.h"
#include "onex/engine/engine.h"
#include "onex/engine/snapshot_ops.h"
#include "onex/engine/wal.h"
#include "test_util.h"

namespace onex {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/onex_recovery_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void CopyDir(const std::string& src, const std::string& dst) {
  fs::remove_all(dst);
  fs::copy(src, dst, fs::copy_options::recursive);
}

DurabilityOptions TestDurability(const std::string& dir,
                                 std::uint64_t every = 0) {
  DurabilityOptions opt;
  opt.dir = dir;
  opt.checkpoint_every = every;
  // No fsync in tests: a simulated crash copies flushed file contents, so
  // nothing is lost, and the matrix runs hundreds of recoveries.
  opt.fsync = false;
  return opt;
}

/// The fixed query battery: every observable the acceptance criterion
/// compares bit-for-bit between a recovered engine and its uncrashed twin.
struct Battery {
  bool present = false;
  bool prepared = false;
  std::vector<std::string> names;
  std::vector<std::vector<double>> raw;
  std::vector<std::vector<double>> normalized;
  double norm_min = 0.0, norm_max = 0.0;
  std::vector<std::pair<double, double>> per_series;
  std::size_t groups = 0, members = 0, classes = 0;
  /// Per class: length, then per-group member (series,start) refs.
  std::vector<std::pair<std::size_t, std::vector<std::vector<
      std::pair<std::size_t, std::size_t>>>>> membership;
  std::vector<double> drift;  ///< Per-class outlier fractions.
  /// Flattened KNN answers: (match series, start, length, dtw,
  /// normalized_dtw) for each fixed query spec.
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t, double,
                         double>> knn;
};

Battery Capture(Engine& engine, const std::string& name) {
  Battery b;
  Result<std::shared_ptr<const PreparedDataset>> got = engine.Get(name);
  if (!got.ok()) return b;
  const PreparedDataset& ds = **got;
  b.present = true;
  b.prepared = ds.prepared();
  for (const TimeSeries& ts : ds.raw->series()) {
    b.names.push_back(ts.name());
    b.raw.push_back(ts.values());
  }
  if (ds.normalized != nullptr) {
    for (const TimeSeries& ts : ds.normalized->series()) {
      b.normalized.push_back(ts.values());
    }
    b.norm_min = ds.norm_params.min;
    b.norm_max = ds.norm_params.max;
    b.per_series = ds.norm_params.per_series;
  }
  if (!b.prepared) return b;

  b.groups = ds.base->stats().num_groups;
  b.members = ds.base->stats().num_subsequences;
  b.classes = ds.base->stats().num_length_classes;
  for (const LengthClass& cls : ds.base->length_classes()) {
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> groups;
    for (const SimilarityGroup& g : cls.groups) {
      std::vector<std::pair<std::size_t, std::size_t>> refs;
      for (const SubseqRef& ref : g.members()) {
        refs.emplace_back(ref.series, ref.start);
      }
      groups.push_back(std::move(refs));
    }
    b.membership.emplace_back(cls.length, std::move(groups));
  }
  for (const LengthClassDrift& d : ComputeDrift(*ds.base)) {
    b.drift.push_back(d.fraction());
  }

  // Fixed MATCH/KNN battery over series that exist from the first op.
  const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> specs =
      {{0, 2, 8}, {1, 5, 6}, {2, 0, 9}};
  for (const auto& [series, start, len] : specs) {
    QuerySpec spec;
    spec.series = series;
    spec.start = start;
    spec.length = len;
    Result<std::vector<MatchResult>> knn = engine.Knn(name, spec, 3);
    EXPECT_TRUE(knn.ok()) << knn.status();
    if (!knn.ok()) continue;
    for (const MatchResult& m : *knn) {
      b.knn.emplace_back(m.match.ref.series, m.match.ref.start,
                         m.match.ref.length, m.match.dtw,
                         m.match.normalized_dtw);
    }
  }
  return b;
}

void ExpectBatteryEq(const Battery& want, const Battery& got,
                     const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.present, got.present);
  if (!want.present) return;
  EXPECT_EQ(want.prepared, got.prepared);
  EXPECT_EQ(want.names, got.names);
  ASSERT_EQ(want.raw, got.raw) << "raw values diverged";
  ASSERT_EQ(want.normalized, got.normalized) << "normalized values diverged";
  EXPECT_EQ(want.norm_min, got.norm_min);
  EXPECT_EQ(want.norm_max, got.norm_max);
  EXPECT_EQ(want.per_series, got.per_series);
  if (!want.prepared) return;
  EXPECT_EQ(want.groups, got.groups);
  EXPECT_EQ(want.members, got.members);
  EXPECT_EQ(want.classes, got.classes);
  ASSERT_EQ(want.membership, got.membership) << "group membership diverged";
  ASSERT_EQ(want.drift, got.drift);
  ASSERT_EQ(want.knn, got.knn) << "query answers diverged";
}

std::string Fingerprint(const Battery& b) {
  std::ostringstream out;
  out << b.present << '|' << b.prepared << '|';
  for (const auto& v : b.raw) {
    for (double x : v) out << StrFormat("%.17g,", x);
    out << ';';
  }
  for (const auto& v : b.normalized) {
    for (double x : v) out << StrFormat("%.17g,", x);
    out << ';';
  }
  out << b.groups << '|' << b.members << '|';
  for (const auto& [len, groups] : b.membership) {
    out << len << ':';
    for (const auto& g : groups) {
      for (const auto& [s, st] : g) out << s << '.' << st << ',';
      out << '/';
    }
  }
  for (const auto& [s, st, len, dtw, ndtw] : b.knn) {
    out << s << ',' << st << ',' << len << ','
        << StrFormat("%.17g,%.17g;", dtw, ndtw);
  }
  return out.str();
}

BaseBuildOptions SmallOptions(double st = 0.25) {
  BaseBuildOptions opt;
  opt.st = st;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

/// One scripted mutation, applied identically to any engine. Keeping the
/// script as data lets the subject, its crash copies and the uncrashed
/// twin replay exactly the same acknowledged history.
struct Op {
  std::string description;
  std::function<void(Engine&)> apply;
};

std::vector<Op> ScriptedOps(const std::string& save_path) {
  std::vector<Op> ops;
  auto add = [&ops](std::string what, std::function<void(Engine&)> fn) {
    ops.push_back(Op{std::move(what), std::move(fn)});
  };
  add("load A", [](Engine& e) {
    ASSERT_TRUE(
        e.LoadDataset("A", onex::testing::SmallDataset(5, 20, 11)).ok());
  });
  add("prepare A", [](Engine& e) {
    ASSERT_TRUE(e.Prepare("A", SmallOptions()).ok());
  });
  add("extend A s0", [](Engine& e) {
    ASSERT_TRUE(e.ExtendSeries("A", 0, {0.31, -0.2, 0.11, 0.4}).ok());
  });
  add("append A", [](Engine& e) {
    Rng rng(77);
    ASSERT_TRUE(
        e.AppendSeries(
             "A", TimeSeries("newcomer",
                             onex::testing::SmoothSeries(&rng, 12), "x"))
            .ok());
  });
  add("checkpoint A", [](Engine& e) {
    ASSERT_TRUE(e.registry().Checkpoint("A").ok());
  });
  add("extend A s2", [](Engine& e) {
    ASSERT_TRUE(e.ExtendSeries("A", 2, {0.9, 0.85, 0.8}).ok());
  });
  add("regroup A", [](Engine& e) {
    ASSERT_TRUE(e.registry().RegroupAsync("A", {4, 5, 6}).Wait().ok());
  });
  add("re-prepare A", [](Engine& e) {
    ASSERT_TRUE(e.Prepare("A", SmallOptions(0.2)).ok());
  });
  add("batch extend A", [](Engine& e) {
    std::vector<Engine::ExtendSpec> specs(2);
    specs[0].series = 1;
    specs[0].points = {0.05, 0.1};
    specs[1].series = 3;
    specs[1].points = {-0.4, -0.35, -0.3, -0.25, -0.2};
    ASSERT_TRUE(e.ExtendSeries("A", std::move(specs)).ok());
  });
  add("load+prepare B", [](Engine& e) {
    ASSERT_TRUE(
        e.LoadDataset("B", onex::testing::SmallDataset(4, 16, 23)).ok());
    ASSERT_TRUE(e.Prepare("B", SmallOptions()).ok());
  });
  add("save+loadbase C", [save_path](Engine& e) {
    ASSERT_TRUE(e.SavePrepared("A", save_path).ok());
    ASSERT_TRUE(e.LoadPrepared("C", save_path).ok());
  });
  add("evict all", [](Engine& e) {
    e.registry().SetPreparedBudget(1);
    e.registry().SetPreparedBudget(0);
  });
  add("rebuild A via query", [](Engine& e) {
    QuerySpec spec;
    spec.series = 0;
    spec.start = 2;
    spec.length = 8;
    ASSERT_TRUE(e.SimilaritySearch("A", spec).ok());
  });
  add("checkpoint A again", [](Engine& e) {
    ASSERT_TRUE(e.registry().Checkpoint("A").ok());
  });
  add("extend A after ckpt", [](Engine& e) {
    ASSERT_TRUE(e.ExtendSeries("A", 4, {1.1, 1.15}).ok());
  });
  return ops;
}

const std::vector<std::string> kDatasets = {"A", "B", "C"};

std::vector<Battery> CaptureAll(Engine& engine) {
  std::vector<Battery> out;
  for (const std::string& name : kDatasets) {
    out.push_back(Capture(engine, name));
  }
  return out;
}

void ExpectAllEq(const std::vector<Battery>& want,
                 const std::vector<Battery>& got, const std::string& where) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ExpectBatteryEq(want[i], got[i], where + " dataset " + kDatasets[i]);
  }
}

/// The crash matrix: run the script on a durable subject, snapshotting the
/// data dir after every acknowledged op; recovering any snapshot must
/// reproduce the subject's in-memory battery at that op, bit for bit, with
/// zero acknowledged writes lost.
TEST(EngineRecovery, CrashAtEveryRecordBoundaryRecoversBitIdentically) {
  const std::string dir = FreshDir("matrix");
  const std::string save_path = dir + "-savebase.onex";
  const std::vector<Op> ops = ScriptedOps(save_path);

  std::vector<std::vector<Battery>> at_op;
  {
    Engine subject;
    ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
    for (std::size_t k = 0; k < ops.size(); ++k) {
      ops[k].apply(subject);
      if (::testing::Test::HasFatalFailure()) return;
      at_op.push_back(CaptureAll(subject));
      CopyDir(dir, dir + "-crash-" + std::to_string(k));
    }
  }

  for (std::size_t k = 0; k < ops.size(); ++k) {
    const std::string crash_dir = dir + "-crash-" + std::to_string(k);
    Engine recovered;
    Status s = recovered.EnableDurability(TestDurability(crash_dir));
    ASSERT_TRUE(s.ok()) << "recovery after '" << ops[k].description
                        << "': " << s;
    ExpectAllEq(at_op[k], CaptureAll(recovered),
                "crash after '" + ops[k].description + "'");
    fs::remove_all(crash_dir);
  }
  fs::remove_all(dir);
  std::remove(save_path.c_str());
}

/// Torn writes: cut the WAL mid-record at several offsets inside the last
/// appended record; recovery must land exactly on the previous op's state —
/// the torn write was never acknowledged, everything before it was.
TEST(EngineRecovery, TornTailLosesExactlyTheUnacknowledgedWrite) {
  const std::string dir = FreshDir("torn");
  Engine subject;
  ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
  const std::string wal = dir + "/A/wal";

  ASSERT_TRUE(
      subject.LoadDataset("A", onex::testing::SmallDataset(5, 20, 3)).ok());
  ASSERT_TRUE(subject.Prepare("A", SmallOptions()).ok());

  struct Step {
    std::string what;
    std::size_t before = 0, after = 0;
    Battery battery_before;
  };
  std::vector<Step> steps;
  auto mutate = [&](const std::string& what, auto&& fn) {
    Step step;
    step.what = what;
    step.before = fs::file_size(wal);
    step.battery_before = Capture(subject, "A");
    fn();
    step.after = fs::file_size(wal);
    steps.push_back(std::move(step));
    CopyDir(dir, dir + "-post-" + std::to_string(steps.size() - 1));
  };
  mutate("extend", [&] {
    ASSERT_TRUE(subject.ExtendSeries("A", 0, {0.5, 0.6, 0.7}).ok());
  });
  mutate("append", [&] {
    Rng rng(5);
    ASSERT_TRUE(subject
                    .AppendSeries("A", TimeSeries("n", onex::testing::
                                                           SmoothSeries(
                                                               &rng, 10)))
                    .ok());
  });
  mutate("regroup", [&] {
    ASSERT_TRUE(subject.registry().RegroupAsync("A", {4, 5}).Wait().ok());
  });

  for (std::size_t k = 0; k < steps.size(); ++k) {
    const Step& step = steps[k];
    ASSERT_GT(step.after, step.before) << step.what;
    const std::vector<std::size_t> cuts = {
        step.before + 1, (step.before + step.after) / 2, step.after - 1};
    for (const std::size_t cut : cuts) {
      const std::string crash_dir = dir + "-torncase";
      CopyDir(dir + "-post-" + std::to_string(k), crash_dir);
      fs::resize_file(crash_dir + "/A/wal", cut);
      Engine recovered;
      Status s = recovered.EnableDurability(TestDurability(crash_dir));
      ASSERT_TRUE(s.ok()) << step.what << " cut=" << cut << ": " << s;
      ExpectBatteryEq(
          step.battery_before, Capture(recovered, "A"),
          StrFormat("torn %s cut=%zu", step.what.c_str(), cut));
      fs::remove_all(crash_dir);
    }
    fs::remove_all(dir + "-post-" + std::to_string(k));
  }
  fs::remove_all(dir);
}

/// Differential recovery oracle (8 seeded random schedules): run an
/// identical randomized schedule on a durable subject and a durable twin in
/// separate dirs, crash the subject at a random acknowledged-op boundary,
/// recover, and compare the full battery against the uncrashed twin's state
/// at that boundary.
TEST(EngineRecovery, SeededRandomSchedulesMatchUncrashedTwin) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    const std::string subject_dir =
        FreshDir("diff_subject_" + std::to_string(seed));
    const std::string twin_dir = FreshDir("diff_twin_" + std::to_string(seed));

    constexpr std::size_t kOps = 25;
    Rng pick(seed * 7919);
    const std::size_t crash_at = pick.UniformIndex(kOps);

    // One deterministic schedule, expressed as data so both engines replay
    // the identical acknowledged history.
    std::vector<std::function<void(Engine&)>> schedule;
    schedule.push_back([seed](Engine& e) {
      ASSERT_TRUE(
          e.LoadDataset("A", onex::testing::SmallDataset(4, 18, seed)).ok());
      ASSERT_TRUE(e.Prepare("A", SmallOptions()).ok());
    });
    Rng gen(seed * 104729);
    for (std::size_t i = 1; i < kOps; ++i) {
      const double roll = gen.Uniform();
      if (roll < 0.55) {
        const std::size_t series = gen.UniformIndex(4);
        const std::size_t n = 1 + gen.UniformIndex(4);
        std::vector<double> points;
        for (std::size_t p = 0; p < n; ++p) {
          points.push_back(gen.Uniform(-1.5, 1.5));
        }
        schedule.push_back([series, points](Engine& e) {
          ASSERT_TRUE(e.ExtendSeries("A", series, points).ok());
        });
      } else if (roll < 0.70) {
        const std::vector<double> values =
            onex::testing::RandomSeries(&gen, 8 + gen.UniformIndex(8));
        const std::string name = "app_" + std::to_string(i);
        schedule.push_back([name, values](Engine& e) {
          ASSERT_TRUE(e.AppendSeries("A", TimeSeries(name, values)).ok());
        });
      } else if (roll < 0.80) {
        schedule.push_back([](Engine& e) {
          ASSERT_TRUE(e.registry().RegroupAsync("A", {4, 5, 6, 7})
                          .Wait()
                          .ok());
        });
      } else if (roll < 0.90) {
        schedule.push_back([](Engine& e) {
          ASSERT_TRUE(e.registry().Checkpoint("A").ok());
        });
      } else {
        const double st = 0.15 + 0.1 * gen.Uniform();
        schedule.push_back([st](Engine& e) {
          ASSERT_TRUE(e.Prepare("A", SmallOptions(st)).ok());
        });
      }
    }

    Battery twin_at_crash;
    {
      Engine twin;
      ASSERT_TRUE(twin.EnableDurability(TestDurability(twin_dir)).ok());
      for (std::size_t i = 0; i < schedule.size(); ++i) {
        schedule[i](twin);
        if (::testing::Test::HasFatalFailure()) return;
        if (i == crash_at) twin_at_crash = Capture(twin, "A");
      }
    }
    {
      Engine subject;
      ASSERT_TRUE(subject.EnableDurability(TestDurability(subject_dir)).ok());
      for (std::size_t i = 0; i <= crash_at; ++i) {
        schedule[i](subject);
        if (::testing::Test::HasFatalFailure()) return;
      }
      // The "crash": the subject dies here with its files as they are.
    }
    Engine recovered;
    Status s = recovered.EnableDurability(TestDurability(subject_dir));
    ASSERT_TRUE(s.ok()) << s;
    ExpectBatteryEq(twin_at_crash, Capture(recovered, "A"),
                    StrFormat("crash at op %zu", crash_at));

    fs::remove_all(subject_dir);
    fs::remove_all(twin_dir);
  }
}

/// Fuzzed WAL corruption: random byte flips, truncations and duplicated
/// tails over a real data dir. Every attempt must end in a structured error
/// or a recovery whose battery matches SOME acknowledged state of true
/// history — never UB, never a hang, never a novel base.
TEST(EngineRecovery, FuzzedCorruptionNeverRecoversSilentlyWrongState) {
  const std::string dir = FreshDir("fuzz");
  std::set<std::string> legal;  // fingerprints of every acknowledged state
  {
    Engine subject;
    ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
    ASSERT_TRUE(
        subject.LoadDataset("A", onex::testing::SmallDataset(4, 16, 9)).ok());
    legal.insert(Fingerprint(Capture(subject, "A")));
    ASSERT_TRUE(subject.Prepare("A", SmallOptions()).ok());
    legal.insert(Fingerprint(Capture(subject, "A")));
    ASSERT_TRUE(subject.registry().Checkpoint("A").ok());
    legal.insert(Fingerprint(Capture(subject, "A")));
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(subject.ExtendSeries("A", i, {0.1 * i, 0.2, -0.1}).ok());
      legal.insert(Fingerprint(Capture(subject, "A")));
    }
  }
  std::string wal_bytes;
  {
    std::ifstream in(dir + "/A/wal", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    wal_bytes = buf.str();
  }

  Rng rng(4242);
  int errors = 0, recoveries = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = wal_bytes;
    switch (rng.UniformIndex(3)) {
      case 0: {  // byte flip
        const std::size_t pos = rng.UniformIndex(mutated.size());
        mutated[pos] = static_cast<char>(
            mutated[pos] ^ static_cast<char>(1 << rng.UniformIndex(8)));
        break;
      }
      case 1:  // truncation
        mutated.resize(rng.UniformIndex(mutated.size()));
        break;
      default: {  // duplicated tail
        const std::size_t tail = 1 + rng.UniformIndex(mutated.size() - 1);
        mutated += mutated.substr(mutated.size() - tail);
        break;
      }
    }
    const std::string crash_dir = dir + "-fuzzcase";
    CopyDir(dir, crash_dir);
    {
      std::ofstream out(crash_dir + "/A/wal",
                        std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    Engine recovered;
    Status s = recovered.EnableDurability(TestDurability(crash_dir));
    if (!s.ok()) {
      ++errors;  // clean structured rejection
    } else {
      Battery b = Capture(recovered, "A");
      if (b.present) {
        EXPECT_TRUE(legal.contains(Fingerprint(b)))
            << "trial " << trial
            << " recovered a state that was never acknowledged";
      }
      ++recoveries;
    }
    fs::remove_all(crash_dir);
  }
  // Both outcomes must actually occur for the fuzz to mean anything.
  EXPECT_GT(errors, 0);
  EXPECT_GT(recoveries, 0);
  fs::remove_all(dir);
}

/// PERSIST mid-session: datasets loaded before durability was enabled are
/// bootstrapped into the data dir and then journaled like everything else.
TEST(EngineRecovery, EnableDurabilityMidSessionBootstrapsLiveSlots) {
  const std::string dir = FreshDir("bootstrap");
  Battery live;
  {
    Engine subject;
    ASSERT_TRUE(
        subject.LoadDataset("A", onex::testing::SmallDataset(4, 18, 31)).ok());
    ASSERT_TRUE(subject.Prepare("A", SmallOptions()).ok());
    ASSERT_TRUE(subject.ExtendSeries("A", 1, {0.2, 0.3}).ok());
    ASSERT_TRUE(
        subject.LoadDataset("Rawonly", onex::testing::SmallDataset(2, 10, 8))
            .ok());
    ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
    EXPECT_FALSE(subject.EnableDurability(TestDurability(dir)).ok())
        << "second enable must be FailedPrecondition";
    // Journaled mutations after the bootstrap.
    ASSERT_TRUE(subject.ExtendSeries("A", 0, {0.9}).ok());
    live = Capture(subject, "A");
  }
  Engine recovered;
  ASSERT_TRUE(recovered.EnableDurability(TestDurability(dir)).ok());
  ExpectBatteryEq(live, Capture(recovered, "A"), "bootstrap");
  Result<std::shared_ptr<const PreparedDataset>> raw =
      recovered.Get("Rawonly");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)->raw->size(), 2u);
  EXPECT_FALSE((*raw)->prepared());
  fs::remove_all(dir);
}

/// The write-ahead contract at the Replace seam: a journaled slot bounces
/// an install that brings no record (the caller read durable() before
/// PERSIST armed it), so an acknowledged write can never be missing from
/// the log — the conditional-install loop re-reads the flag and retries
/// with a record.
TEST(EngineRecovery, JournaledSlotBouncesUnjournaledInstalls) {
  const std::string dir = FreshDir("bounce");
  Engine subject;
  ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
  ASSERT_TRUE(
      subject.LoadDataset("A", onex::testing::SmallDataset(3, 12, 44)).ok());

  Result<std::shared_ptr<const PreparedDataset>> current = subject.Get("A");
  ASSERT_TRUE(current.ok());
  const TimeSeries newcomer("n", {0.1, 0.2, 0.3, 0.4});
  Result<std::shared_ptr<const PreparedDataset>> next =
      ApplyAppend(**current, newcomer);
  ASSERT_TRUE(next.ok());

  // No record on a journaled slot: reported as a lost race, not installed.
  Result<bool> installed =
      subject.registry().Replace("A", *next, current->get(), nullptr);
  ASSERT_TRUE(installed.ok());
  EXPECT_FALSE(*installed);
  EXPECT_EQ((*subject.Get("A"))->raw->size(), 3u);

  // The retry path: same install with its record succeeds and journals.
  WalRecord record = WalAppendRecord(newcomer);
  installed = subject.registry().Replace("A", *next, current->get(), &record);
  ASSERT_TRUE(installed.ok());
  EXPECT_TRUE(*installed);
  EXPECT_EQ((*subject.Get("A"))->raw->size(), 4u);
  Result<SlotDurability> d = subject.registry().Durability("A");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->last_seq, 2u);  // load record + the journaled append
  fs::remove_all(dir);
}

/// Dropped datasets stay dropped: DROP removes the journal, and restart
/// does not resurrect the slot.
TEST(EngineRecovery, DropRemovesDurableState) {
  const std::string dir = FreshDir("drop");
  {
    Engine subject;
    ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
    ASSERT_TRUE(
        subject.LoadDataset("A", onex::testing::SmallDataset(3, 12, 2)).ok());
    ASSERT_TRUE(
        subject.LoadDataset("B", onex::testing::SmallDataset(3, 12, 4)).ok());
    ASSERT_TRUE(subject.DropDataset("A").ok());
  }
  Engine recovered;
  ASSERT_TRUE(recovered.EnableDurability(TestDurability(dir)).ok());
  EXPECT_FALSE(recovered.Get("A").ok());
  EXPECT_TRUE(recovered.Get("B").ok());
  fs::remove_all(dir);
}

/// A crash at slot birth (directory with a torn or header-only WAL) left
/// nothing acknowledged: recovery must clear the husk so the name stays
/// loadable, not wedge it forever.
TEST(EngineRecovery, CrashAtSlotBirthDoesNotWedgeTheName) {
  const std::string dir = FreshDir("birth");
  for (const std::string& content : {std::string("ONEXW"),  // torn header
                                     std::string()}) {      // empty wal
    fs::remove_all(dir + "/A");
    fs::create_directories(dir + "/A");
    std::ofstream(dir + "/A/wal", std::ios::binary) << content;
    Engine recovered;
    ASSERT_TRUE(recovered.EnableDurability(TestDurability(dir)).ok());
    EXPECT_FALSE(recovered.Get("A").ok()) << "no write was acknowledged";
    // The name must be reusable immediately.
    ASSERT_TRUE(
        recovered.LoadDataset("A", onex::testing::SmallDataset(3, 12, 6))
            .ok());
    ASSERT_TRUE(recovered.Prepare("A", SmallOptions()).ok());
    ASSERT_TRUE(recovered.DropDataset("A").ok());
  }
  fs::remove_all(dir);
}

/// Background checkpoints racing live queries and extends: the TSan
/// acceptance test for the checkpoint's canonical-adoption install. After
/// the dust settles, a restart still answers identically.
TEST(EngineRecovery, CheckpointsRaceQueriesWithoutTornState) {
  const std::string dir = FreshDir("race");
  Battery live;
  {
    Engine subject;
    ASSERT_TRUE(subject
                    .EnableDurability(TestDurability(dir, /*every=*/3))
                    .ok());
    ASSERT_TRUE(
        subject.LoadDataset("A", onex::testing::SmallDataset(4, 18, 55)).ok());
    ASSERT_TRUE(subject.Prepare("A", SmallOptions()).ok());

    std::atomic<bool> stop{false};
    std::atomic<int> queries_ok{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&subject, &stop, &queries_ok] {
        QuerySpec spec;
        spec.series = 0;
        spec.start = 2;
        spec.length = 8;
        while (!stop.load()) {
          Result<MatchResult> r = subject.SimilaritySearch("A", spec);
          ASSERT_TRUE(r.ok()) << r.status();
          ++queries_ok;
        }
      });
    }
    // At least 24 extends, and keep going until every reader has answered
    // at least once so the race is real (mirrors the engine_concurrency
    // fix: never assert on readers that might not have started yet).
    for (int i = 0; i < 24 || queries_ok.load() < 3; ++i) {
      ASSERT_TRUE(
          subject.ExtendSeries("A", i % 4, {0.01 * i, -0.02 * i}).ok());
    }
    stop.store(true);
    for (std::thread& t : readers) t.join();
    EXPECT_GT(queries_ok.load(), 0);

    // Settle on a canonical state (a still-retiring background checkpoint
    // re-installs the identical canonical image, so this is stable), then
    // capture what a restart must reproduce.
    ASSERT_TRUE(subject.registry().Checkpoint("A").ok());
    live = Capture(subject, "A");
  }
  Engine recovered;
  ASSERT_TRUE(recovered.EnableDurability(TestDurability(dir)).ok());
  ExpectBatteryEq(live, Capture(recovered, "A"), "post-race restart");
  fs::remove_all(dir);
}

/// Quick end-to-end smoke for scripts/check.sh: load, prepare, stream,
/// restart, same answers.
TEST(EngineRecovery, SmokeRestart) {
  const std::string dir = FreshDir("smoke");
  Battery live;
  {
    Engine subject;
    ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
    ASSERT_TRUE(
        subject.LoadDataset("A", onex::testing::SmallDataset(4, 16, 1)).ok());
    ASSERT_TRUE(subject.Prepare("A", SmallOptions()).ok());
    ASSERT_TRUE(subject.ExtendSeries("A", 0, {0.4, 0.5}).ok());
    live = Capture(subject, "A");
  }
  Engine recovered;
  ASSERT_TRUE(recovered.EnableDurability(TestDurability(dir)).ok());
  ExpectBatteryEq(live, Capture(recovered, "A"), "smoke");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace onex
