/// Concurrency stress over the engine: the demo's deployment serves many
/// analysts against one engine, with occasional re-preparation. Snapshot
/// semantics must keep readers consistent throughout.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/engine/engine.h"
#include "onex/gen/generators.h"
#include "test_util.h"

namespace onex {
namespace {

Dataset MakeData(std::uint64_t seed = 42) {
  gen::SineFamilyOptions opt;
  opt.num_series = 8;
  opt.length = 24;
  opt.seed = seed;
  return gen::MakeSineFamilies(opt);
}

BaseBuildOptions Quick() {
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

TEST(EngineConcurrencyTest, ParallelQueriesShareOnePreparedDataset) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData()).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &failures, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 7);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        QuerySpec spec;
        spec.series = rng.UniformIndex(8);
        spec.start = rng.UniformIndex(12);
        spec.length = 6 + rng.UniformIndex(5);
        Result<MatchResult> m = engine.SimilaritySearch("a", spec);
        if (!m.ok() || !(m->match.normalized_dtw >= 0.0)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(EngineConcurrencyTest, QueriesRaceWithRepreparation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData()).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> query_failures{0};
  std::atomic<int> queries_done{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 100);
      while (!stop.load()) {
        QuerySpec spec;
        spec.series = rng.UniformIndex(8);
        spec.length = 8;
        Result<MatchResult> m = engine.SimilaritySearch("a", spec);
        if (!m.ok()) query_failures.fetch_add(1);
        queries_done.fetch_add(1);
      }
    });
  }

  // On a loaded machine the six Prepare rounds below can finish before the
  // reader threads are even scheduled; wait for the first query so the
  // writer genuinely races live readers and the assertions are meaningful.
  while (queries_done.load() == 0) std::this_thread::yield();

  // Writer: flip between two thresholds while readers hammer the engine.
  for (int round = 0; round < 6; ++round) {
    BaseBuildOptions opt = Quick();
    opt.st = round % 2 == 0 ? 0.1 : 0.3;
    ASSERT_TRUE(engine.Prepare("a", opt).ok()) << "round " << round;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_GT(queries_done.load(), 0);
}

TEST(EngineConcurrencyTest, AppendsRaceWithQueries) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData()).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    Rng rng(55);
    while (!stop.load()) {
      QuerySpec spec;
      spec.series = rng.UniformIndex(8);  // original series stay valid
      spec.length = 8;
      if (!engine.SimilaritySearch("a", spec).ok()) failures.fetch_add(1);
    }
  });

  Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    std::string series_name = "n";
    series_name += std::to_string(i);
    ASSERT_TRUE(engine
                    .AppendSeries("a", TimeSeries(std::move(series_name),
                                                  testing::SmoothSeries(
                                                      &rng, 24)))
                    .ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get("a");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->raw->size(), 13u);
}

TEST(EngineConcurrencyTest, DistinctDatasetsAreIndependent) {
  Engine engine;
  constexpr int kDatasets = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int d = 0; d < kDatasets; ++d) {
    threads.emplace_back([&engine, &failures, d] {
      const std::string name = "ds_" + std::to_string(d);
      if (!engine.LoadDataset(name, MakeData(static_cast<std::uint64_t>(d)))
               .ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!engine.Prepare(name, Quick()).ok()) {
        failures.fetch_add(1);
        return;
      }
      QuerySpec spec;
      spec.series = 0;
      spec.length = 8;
      if (!engine.SimilaritySearch(name, spec).ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.ListDatasets().size(), static_cast<std::size_t>(kDatasets));
}

}  // namespace
}  // namespace onex
