/// Golden-file properties of the ONEXWAL format (DESIGN.md §13):
/// byte-stable encode/decode round trips, every truncation prefix either
/// rejected or cleanly replayed-to-prefix, random byte flips surfacing as
/// checksum rejection or clean parse errors (never UB or a silently
/// different record), duplicated tails rejected as non-monotone history,
/// and decode-side caps — a record body can declare any count it likes,
/// but allocation only ever follows bytes actually present. Mirrors
/// core_base_io_golden_test; run under ASan in CI.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/core/onex_base.h"
#include "onex/engine/dataset_registry.h"
#include "onex/engine/wal.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

std::vector<WalRecord> GoldenRecords() {
  std::vector<WalRecord> records;

  Dataset ds("golden ds \"quoted\"");
  ds.Add(TimeSeries("alpha", {0.25, -1.5, 3.0, 0.1}, "class a"));
  ds.Add(TimeSeries("beta with spaces", {1e-300, 2.5e17, -0.0}, ""));
  records.push_back(WalLoadRecord(ds));

  records.push_back(WalAppendRecord(
      TimeSeries("newcomer", {0.5, 0.25, 0.125}, "label\nwith newline")));

  std::vector<SeriesExtension> ext(2);
  ext[0].series = 0;
  ext[0].points = {1.0, 2.0, 3.0};
  ext[1].series = 2;
  ext[1].points = {-7.25};
  records.push_back(WalExtendRecord(std::move(ext)));

  BaseBuildOptions opt;
  opt.st = 0.17;
  opt.min_length = 4;
  opt.max_length = 12;
  opt.length_step = 2;
  opt.stride = 3;
  opt.centroid_policy = CentroidPolicy::kRunningMean;
  records.push_back(WalPrepareRecord(opt, NormalizationKind::kZScoreSeries));

  records.push_back(WalRegroupRecord({4, 6, 10}));
  records.push_back(WalRebuildRecord());
  records.push_back(WalEvictRecord());
  records.push_back(WalCheckpointRecord(41));

  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].seq = i + 1;
  }
  return records;
}

std::string EncodeLog(const std::string& name,
                      const std::vector<WalRecord>& records) {
  std::string out = EncodeWalHeader(name);
  for (const WalRecord& r : records) out += EncodeWalRecord(r);
  return out;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  ASSERT_EQ(a.seq, b.seq);
  ASSERT_EQ(a.type, b.type);
  switch (a.type) {
    case WalRecordType::kLoad: {
      ASSERT_EQ(a.dataset.name(), b.dataset.name());
      ASSERT_EQ(a.dataset.size(), b.dataset.size());
      for (std::size_t s = 0; s < a.dataset.size(); ++s) {
        ASSERT_EQ(a.dataset[s].name(), b.dataset[s].name());
        ASSERT_EQ(a.dataset[s].label(), b.dataset[s].label());
        ASSERT_EQ(a.dataset[s].values(), b.dataset[s].values());
      }
      break;
    }
    case WalRecordType::kAppend:
      ASSERT_EQ(a.series.name(), b.series.name());
      ASSERT_EQ(a.series.label(), b.series.label());
      ASSERT_EQ(a.series.values(), b.series.values());
      break;
    case WalRecordType::kExtend: {
      ASSERT_EQ(a.extensions.size(), b.extensions.size());
      for (std::size_t i = 0; i < a.extensions.size(); ++i) {
        ASSERT_EQ(a.extensions[i].series, b.extensions[i].series);
        ASSERT_EQ(a.extensions[i].points, b.extensions[i].points);
      }
      break;
    }
    case WalRecordType::kPrepare:
      ASSERT_EQ(a.options.st, b.options.st);
      ASSERT_EQ(a.options.min_length, b.options.min_length);
      ASSERT_EQ(a.options.max_length, b.options.max_length);
      ASSERT_EQ(a.options.length_step, b.options.length_step);
      ASSERT_EQ(a.options.stride, b.options.stride);
      ASSERT_EQ(a.options.centroid_policy, b.options.centroid_policy);
      ASSERT_EQ(a.norm, b.norm);
      break;
    case WalRecordType::kRegroup:
      ASSERT_EQ(a.lengths, b.lengths);
      break;
    case WalRecordType::kRebuild:
    case WalRecordType::kEvict:
      break;
    case WalRecordType::kCheckpoint:
      ASSERT_EQ(a.checkpoint_seq, b.checkpoint_seq);
      break;
  }
}

TEST(WalGolden, HeaderRoundTrip) {
  for (const std::string& name :
       {std::string("plain"), std::string("has space"),
        std::string("quo\"te\\slash"), std::string("new\nline")}) {
    const std::string line = EncodeWalHeader(name);
    ASSERT_EQ(line.back(), '\n');
    Result<std::string> decoded =
        DecodeWalHeader(std::string_view(line).substr(0, line.size() - 1));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, name);
  }
  EXPECT_FALSE(DecodeWalHeader("ONEXWAL 2 \"x\"").ok());
  EXPECT_FALSE(DecodeWalHeader("NOTAWAL 1 \"x\"").ok());
  EXPECT_FALSE(DecodeWalHeader("ONEXWAL 1 \"\"").ok());
  EXPECT_FALSE(DecodeWalHeader("ONEXWAL 1 \"x\" junk").ok());
}

TEST(WalGolden, RecordRoundTripIsByteStable) {
  const std::vector<WalRecord> records = GoldenRecords();
  for (const WalRecord& record : records) {
    const std::string line = EncodeWalRecord(record);
    ASSERT_EQ(line.back(), '\n');
    Result<WalRecord> decoded =
        DecodeWalRecord(std::string_view(line).substr(0, line.size() - 1));
    ASSERT_TRUE(decoded.ok()) << decoded.status() << " for line: " << line;
    ExpectRecordsEqual(record, *decoded);
    // Re-encoding the decoded record reproduces the bytes exactly: the
    // format has one spelling per record.
    EXPECT_EQ(EncodeWalRecord(*decoded), line);
  }
  // Independent construction encodes to the same digest (byte stability
  // across runs and processes — nothing timestamped or address-dependent).
  const std::string log1 = EncodeLog("golden", GoldenRecords());
  const std::string log2 = EncodeLog("golden", GoldenRecords());
  EXPECT_EQ(Fnv1a64(log1), Fnv1a64(log2));
  EXPECT_EQ(log1, log2);
}

TEST(WalGolden, ScanCleanLog) {
  const std::vector<WalRecord> records = GoldenRecords();
  const std::string log = EncodeLog("golden", records);
  std::istringstream in(log);
  Result<WalScan> scan = ScanWal(in);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->dataset_name, "golden");
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_FALSE(scan->embryonic);
  EXPECT_EQ(scan->valid_bytes, log.size());
  ASSERT_EQ(scan->records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], scan->records[i]);
  }
}

TEST(WalGolden, EveryTruncationPrefixRejectedOrReplayedToPrefix) {
  const std::vector<WalRecord> records = GoldenRecords();
  const std::string log = EncodeLog("golden", records);
  // Record boundaries: byte offsets where a line (header or record) ends.
  std::vector<std::size_t> boundaries;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i] == '\n') boundaries.push_back(i + 1);
  }
  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    std::istringstream in(log.substr(0, cut));
    Result<WalScan> scan = ScanWal(in);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": " << scan.status();
    // Complete records strictly inside the prefix.
    std::size_t complete = 0;
    for (std::size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) ++complete;
    }
    if (cut < boundaries.front()) {
      EXPECT_TRUE(scan->embryonic) << "cut=" << cut;
      continue;
    }
    ASSERT_EQ(scan->records.size(), complete) << "cut=" << cut;
    for (std::size_t i = 0; i < complete; ++i) {
      ExpectRecordsEqual(records[i], scan->records[i]);
    }
    // A cut on a line boundary is clean; inside a line it is a torn tail,
    // and valid_bytes points at the clean prefix either way.
    const bool on_boundary =
        cut == boundaries.front() + 0 ||
        std::find(boundaries.begin(), boundaries.end(), cut) !=
            boundaries.end();
    EXPECT_EQ(scan->torn_tail, !on_boundary) << "cut=" << cut;
    EXPECT_EQ(scan->valid_bytes, boundaries[complete]) << "cut=" << cut;
  }
}

TEST(WalGolden, RandomByteFlipsNeverYieldDifferentRecords) {
  const std::vector<WalRecord> records = GoldenRecords();
  const std::string log = EncodeLog("golden", records);
  Rng rng(20260728);
  int clean_errors = 0;
  int prefix_recoveries = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = log;
    const std::size_t pos = rng.UniformIndex(mutated.size());
    char flipped = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 << rng.UniformIndex(8)));
    mutated[pos] = flipped;
    std::istringstream in(mutated);
    Result<WalScan> scan = ScanWal(in);
    if (!scan.ok()) {
      ++clean_errors;
      continue;
    }
    // The scan survived: whatever it returned must be a prefix of the true
    // history (a flip can sever the tail — e.g. hit the final newline —
    // but it must never smuggle in a different record).
    ++prefix_recoveries;
    ASSERT_LE(scan->records.size(), records.size());
    for (std::size_t i = 0; i < scan->records.size(); ++i) {
      ExpectRecordsEqual(records[i], scan->records[i]);
    }
  }
  // The checksum makes clean rejection the overwhelmingly common outcome.
  EXPECT_GT(clean_errors, 300) << "prefix recoveries: " << prefix_recoveries;
}

TEST(WalGolden, DuplicatedTailIsRejected) {
  const std::vector<WalRecord> records = GoldenRecords();
  std::string log = EncodeLog("golden", records);
  const std::size_t last_line_start = log.rfind("r ");
  log += log.substr(last_line_start);  // duplicate the final record
  std::istringstream in(log);
  Result<WalScan> scan = ScanWal(in);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kParseError);
}

TEST(WalGolden, DeclaredCountsNeverDriveAllocation) {
  // A record body claiming 10^18 series with a correct checksum must fail
  // at token exhaustion, not allocate.
  std::string body = "r 1 load \"x\" 1000000000000000000";
  std::string line =
      body + StrFormat(" c=%016llx",
                       static_cast<unsigned long long>(Fnv1a64(body)));
  Result<WalRecord> r = DecodeWalRecord(line);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  body = "r 1 extend 1 0 999999999999999999";
  line = body + StrFormat(" c=%016llx",
                          static_cast<unsigned long long>(Fnv1a64(body)));
  r = DecodeWalRecord(line);
  ASSERT_FALSE(r.ok());

  body = "r 1 append \"s\" \"l\" 888888888888 1.0";
  line = body + StrFormat(" c=%016llx",
                          static_cast<unsigned long long>(Fnv1a64(body)));
  r = DecodeWalRecord(line);
  ASSERT_FALSE(r.ok());
}

TEST(WalGolden, WriterAppendsScanBackIdentically) {
  const std::string dir = ::testing::TempDir() + "/onex_wal_writer_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal";

  std::vector<WalRecord> records = GoldenRecords();
  {
    Result<WalWriter> writer = WalWriter::Create(path, "golden", false);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (WalRecord& r : records) {
      ASSERT_TRUE(writer->Append(&r).ok());
    }
    EXPECT_EQ(writer->next_seq(), records.size() + 1);
    // Creating over an existing wal must fail, not clobber history.
    EXPECT_FALSE(WalWriter::Create(path, "golden", false).ok());
  }
  Result<WalScan> scan = ScanWalFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(scan->records[i].seq, i + 1);
    ExpectRecordsEqual(records[i], scan->records[i]);
  }
  std::filesystem::remove_all(dir);
}

/// Checkpoint files: exact round trip and flip resistance.
class WalCheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto raw = std::make_shared<const Dataset>(
        onex::testing::SmallDataset(/*num=*/4, /*len=*/18, /*seed=*/7));
    PreparedDataset ds;
    ds.name = "ckpt";
    ds.raw = raw;
    ds.norm_kind = NormalizationKind::kMinMaxDataset;
    Result<Dataset> normalized =
        Normalize(*raw, ds.norm_kind, &ds.norm_params);
    ASSERT_TRUE(normalized.ok());
    ds.normalized =
        std::make_shared<const Dataset>(*std::move(normalized));
    BaseBuildOptions opt;
    opt.st = 0.25;
    opt.min_length = 4;
    opt.max_length = 9;
    Result<OnexBase> base = OnexBase::Build(ds.normalized, opt);
    ASSERT_TRUE(base.ok());
    ds.base = std::make_shared<const OnexBase>(*std::move(base));
    ds.build_options = opt;
    snapshot_ = std::move(ds);
    path_ = ::testing::TempDir() + "/onex_wal_ckpt_test";
  }

  void TearDown() override { std::remove(path_.c_str()); }

  PreparedDataset snapshot_;
  std::string path_;
};

TEST_F(WalCheckpointFileTest, RoundTripIsExact) {
  ASSERT_TRUE(WriteCheckpointFile(snapshot_, path_, false).ok());
  Result<PreparedDataset> loaded = ReadCheckpointFile(path_, "ckpt");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Raw values round-trip bit-exactly (stored verbatim, not denormalized).
  ASSERT_EQ(loaded->raw->size(), snapshot_.raw->size());
  for (std::size_t s = 0; s < snapshot_.raw->size(); ++s) {
    EXPECT_EQ((*loaded->raw)[s].values(), (*snapshot_.raw)[s].values());
    EXPECT_EQ((*loaded->raw)[s].name(), (*snapshot_.raw)[s].name());
  }
  for (std::size_t s = 0; s < snapshot_.normalized->size(); ++s) {
    EXPECT_EQ((*loaded->normalized)[s].values(),
              (*snapshot_.normalized)[s].values());
  }
  // Same membership, class for class, group for group.
  const auto& a = snapshot_.base->length_classes();
  const auto& b = loaded->base->length_classes();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].length, b[c].length);
    ASSERT_EQ(a[c].groups.size(), b[c].groups.size());
    for (std::size_t g = 0; g < a[c].groups.size(); ++g) {
      const auto ma = a[c].groups[g].members();
      const auto mb = b[c].groups[g].members();
      ASSERT_EQ(ma.size(), mb.size());
      for (std::size_t m = 0; m < ma.size(); ++m) {
        EXPECT_EQ(ma[m].series, mb[m].series);
        EXPECT_EQ(ma[m].start, mb[m].start);
      }
    }
  }
}

TEST_F(WalCheckpointFileTest, FlippedBytesAreRejectedOrExact) {
  ASSERT_TRUE(WriteCheckpointFile(snapshot_, path_, false).ok());
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  Rng rng(99);
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = bytes;
    const std::size_t pos = rng.UniformIndex(mutated.size());
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 << rng.UniformIndex(8)));
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    Result<PreparedDataset> loaded = ReadCheckpointFile(path_, "ckpt");
    // The whole payload sits under one FNV checksum: any flip is either
    // rejected cleanly or — impossible in practice — yields the identical
    // state. Never UB, never a silently different base.
    if (!loaded.ok()) {
      ++rejected;
    } else {
      for (std::size_t s = 0; s < snapshot_.raw->size(); ++s) {
        ASSERT_EQ((*loaded->raw)[s].values(), (*snapshot_.raw)[s].values());
      }
    }
  }
  EXPECT_GT(rejected, 398);
}

}  // namespace
}  // namespace onex
