/// End-to-end walkthroughs of the paper's demonstration scenarios (Section
/// 4), exercised through the public Engine API exactly as the web front-end
/// would drive them.
#include <cstddef>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "onex/baseline/brute_force.h"
#include "onex/baseline/ucr_suite.h"
#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"
#include "onex/gen/electricity.h"
#include "onex/gen/generators.h"
#include "onex/viz/charts.h"
#include "onex/viz/exporters.h"

#include <sstream>

namespace onex {
namespace {

TEST(IntegrationTest, SimilarityViewWalkthrough) {
  // "Making Sense of Overall Time Series Trends" + "Honing in On Specific
  // Temporal Trends" + "Highlighting Time-Warped Shape Matching" (Fig 2).
  Engine engine;
  gen::EconomicPanelOptions gopt;
  gopt.years = 25;
  ASSERT_TRUE(
      engine.LoadDataset("growth", gen::MakeEconomicPanel(gopt)).ok());

  // Load -> Prepare: the server-side preprocessing click.
  BaseBuildOptions bopt;
  bopt.st = 0.1;
  bopt.min_length = 6;
  ASSERT_TRUE(engine.Prepare("growth", bopt).ok());

  // Overview Pane: group representatives with intensity coding.
  Result<std::vector<OverviewEntry>> overview = engine.Overview("growth");
  ASSERT_TRUE(overview.ok());
  ASSERT_FALSE(overview->empty());
  const std::string pane =
      viz::RenderOverviewPane(viz::BuildOverviewPane(*overview));
  EXPECT_NE(pane.find("intensity"), std::string::npos);

  // Query Selection Pane: pick MA; Query Preview: brush the second half.
  Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get("growth");
  ASSERT_TRUE(ds.ok());
  const std::size_t ma = *(*ds)->raw->FindByName("Massachusetts");
  QuerySpec brushed;
  brushed.series = ma;
  brushed.start = 12;  // second half of 25 years: recent trends
  brushed.length = 0;

  // Results Pane: best match with warped links.
  QueryOptions qopt;
  qopt.min_length = 8;
  Result<MatchResult> match = engine.SimilaritySearch("growth", brushed, qopt);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->match.path.empty());

  Result<viz::MultiLineChartData> chart =
      engine.MatchMultiLineChart("growth", *match);
  ASSERT_TRUE(chart.ok());
  const std::string rendered = viz::RenderMultiLineChart(*chart);
  EXPECT_NE(rendered.find("warped links"), std::string::npos);
}

TEST(IntegrationTest, LinkedViewsWalkthrough) {
  // "Contrasting Trends Across Multiple Linked Perspectives" (Fig 3): the
  // same match viewed as radial chart and connected scatter plot.
  Engine engine;
  gen::EconomicPanelOptions gopt;
  gopt.indicator = gen::Indicator::kTechEmployment;
  ASSERT_TRUE(engine.LoadDataset("tech", gen::MakeEconomicPanel(gopt)).ok());
  BaseBuildOptions bopt;
  bopt.st = 0.1;
  bopt.min_length = 6;
  ASSERT_TRUE(engine.Prepare("tech", bopt).ok());

  Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get("tech");
  ASSERT_TRUE(ds.ok());
  QuerySpec spec;
  spec.series = *(*ds)->raw->FindByName("Massachusetts");
  spec.length = 0;
  QueryOptions exhaustive;
  exhaustive.exhaustive = true;
  Result<MatchResult> match = engine.SimilaritySearch("tech", spec, exhaustive);
  ASSERT_TRUE(match.ok());

  Result<viz::RadialChartData> radial = engine.MatchRadialChart("tech", *match);
  ASSERT_TRUE(radial.ok());
  EXPECT_FALSE(viz::RenderRadialChart(*radial).empty());

  Result<viz::ConnectedScatterData> scatter =
      engine.MatchConnectedScatter("tech", *match);
  ASSERT_TRUE(scatter.ok());
  // A self-match (distance 0) lies on the 45-degree diagonal, the demo's
  // "extremely close" indicator.
  EXPECT_NEAR(scatter->diagonal_deviation, 0.0, 1e-9);

  // All three CSV exports succeed.
  std::ostringstream r, s;
  EXPECT_TRUE(viz::WriteRadialCsv(*radial, r).ok());
  EXPECT_TRUE(viz::WriteConnectedScatterCsv(*scatter, s).ok());
}

TEST(IntegrationTest, SeasonalViewWalkthrough) {
  // "Exploring Re-occurrence of Motives Within Time Series" (Fig 4): one
  // household's consumption, repeated daily patterns recovered.
  Engine engine;
  gen::ElectricityOptions eopt;
  eopt.num_households = 1;
  eopt.length = 24 * 28;  // four weeks, hourly
  eopt.noise_stddev = 0.04;
  ASSERT_TRUE(
      engine.LoadDataset("power", gen::MakeElectricityLoad(eopt)).ok());

  BaseBuildOptions bopt;
  bopt.st = 0.12;
  bopt.min_length = 24;
  bopt.max_length = 24;  // daily patterns
  ASSERT_TRUE(engine.Prepare("power", bopt).ok());

  SeasonalOptions sopt;
  sopt.length = 24;
  Result<viz::SeasonalViewData> view = engine.SeasonalView("power", 0, sopt);
  ASSERT_TRUE(view.ok());
  ASSERT_FALSE(view->patterns.empty());
  // The dominant pattern recurs at (a multiple of) the daily period.
  const auto& top = view->patterns.front();
  EXPECT_GE(top.segments.size(), 2u);
  EXPECT_EQ(top.typical_gap % 24, 0u)
      << "daily pattern should repeat at 24h multiples, gap="
      << top.typical_gap;
  EXPECT_FALSE(viz::RenderSeasonalView(*view).empty());
}

TEST(IntegrationTest, OnexAgreementWithExactSearch) {
  // The headline behaviour: ONEX answers match exact DTW search quality-wise
  // while examining the compact base. Checked across three datasets.
  struct Case {
    std::string name;
    Dataset dataset;
  };
  gen::SineFamilyOptions sopt;
  sopt.num_series = 6;
  sopt.length = 18;
  gen::WarpedShapeOptions wopt;
  wopt.num_series = 6;
  wopt.length = 18;
  gen::RandomWalkOptions ropt;
  ropt.num_series = 6;
  ropt.length = 18;
  std::vector<Case> cases;
  cases.push_back({"sine", gen::MakeSineFamilies(sopt)});
  cases.push_back({"warped", gen::MakeWarpedShapes(wopt)});
  cases.push_back({"walk", gen::MakeRandomWalks(ropt)});

  for (Case& c : cases) {
    Engine engine;
    ASSERT_TRUE(engine.LoadDataset(c.name, std::move(c.dataset)).ok());
    const double st = 0.15;
    BaseBuildOptions bopt;
    bopt.st = st;
    bopt.min_length = 4;
    bopt.max_length = 10;
    ASSERT_TRUE(engine.Prepare(c.name, bopt).ok());
    Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get(c.name);
    ASSERT_TRUE(ds.ok());

    QuerySpec spec;
    spec.series = 2;
    spec.start = 3;
    spec.length = 8;
    QueryOptions exhaustive;
    exhaustive.exhaustive = true;  // the mode carrying the ST guarantee
    Result<MatchResult> onex_match =
        engine.SimilaritySearch(c.name, spec, exhaustive);
    ASSERT_TRUE(onex_match.ok());

    Result<std::vector<double>> q = engine.ResolveQuery(**ds, spec);
    ASSERT_TRUE(q.ok());
    ScanScope scope;
    scope.min_length = 4;
    scope.max_length = 10;
    Result<ScanMatch> exact =
        BruteForceBestMatch(*(*ds)->normalized, *q, ScanDistance::kDtw, scope);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(onex_match->match.normalized_dtw, exact->normalized + st + 1e-9)
        << "dataset " << c.name;

    // And the UCR-style scanner agrees with brute force exactly.
    UcrSearchOptions uopt;
    uopt.scope = scope;
    Result<ScanMatch> ucr = UcrBestMatch(*(*ds)->normalized, *q, uopt);
    ASSERT_TRUE(ucr.ok());
    EXPECT_NEAR(ucr->normalized, exact->normalized, 1e-9);
  }
}

TEST(IntegrationTest, ThresholdRecommendationAcrossDomains) {
  // §3.3: growth-rate thresholds vs unemployment thresholds differ by orders
  // of magnitude on raw data; after preparation both live in normalized
  // space where one ST serves both.
  Engine engine;
  gen::EconomicPanelOptions gopt;
  gopt.indicator = gen::Indicator::kGrowthRate;
  ASSERT_TRUE(engine.LoadDataset("growth", gen::MakeEconomicPanel(gopt)).ok());
  gopt.indicator = gen::Indicator::kUnemployment;
  ASSERT_TRUE(
      engine.LoadDataset("unemployment", gen::MakeEconomicPanel(gopt)).ok());

  ThresholdAdvisorOptions topt;
  topt.sample_pairs = 600;
  Result<ThresholdReport> raw_growth =
      engine.RecommendThresholds("growth", topt);
  Result<ThresholdReport> raw_unemployment =
      engine.RecommendThresholds("unemployment", topt);
  ASSERT_TRUE(raw_growth.ok());
  ASSERT_TRUE(raw_unemployment.ok());
  EXPECT_GT(raw_unemployment->median_distance,
            raw_growth->median_distance * 100.0);

  BaseBuildOptions bopt;
  bopt.st = 0.1;
  bopt.min_length = 6;
  bopt.max_length = 12;
  ASSERT_TRUE(engine.Prepare("growth", bopt).ok());
  ASSERT_TRUE(engine.Prepare("unemployment", bopt).ok());
  Result<ThresholdReport> norm_growth =
      engine.RecommendThresholds("growth", topt);
  Result<ThresholdReport> norm_unemployment =
      engine.RecommendThresholds("unemployment", topt);
  ASSERT_TRUE(norm_growth.ok());
  ASSERT_TRUE(norm_unemployment.ok());
  // Normalized: same order of magnitude.
  EXPECT_LT(norm_unemployment->median_distance,
            norm_growth->median_distance * 10.0 + 1.0);
  EXPECT_LT(norm_growth->median_distance, 1.0);
  EXPECT_LT(norm_unemployment->median_distance, 1.0);
}

TEST(IntegrationTest, RepreparationWithRecommendedThreshold) {
  // The advisor's output feeds directly back into Prepare: the data-driven
  // parameter loop the paper describes.
  Engine engine;
  gen::SineFamilyOptions sopt;
  sopt.num_series = 6;
  sopt.length = 20;
  ASSERT_TRUE(engine.LoadDataset("s", gen::MakeSineFamilies(sopt)).ok());
  BaseBuildOptions bopt;
  bopt.st = 0.5;  // deliberately coarse first guess
  bopt.min_length = 4;
  bopt.max_length = 10;
  ASSERT_TRUE(engine.Prepare("s", bopt).ok());

  ThresholdAdvisorOptions topt;
  topt.sample_pairs = 500;
  topt.percentiles = {5.0};
  Result<ThresholdReport> report = engine.RecommendThresholds("s", topt);
  ASSERT_TRUE(report.ok());
  const double recommended = report->recommendations.front().st;
  ASSERT_GT(recommended, 0.0);

  bopt.st = recommended;
  ASSERT_TRUE(engine.Prepare("s", bopt).ok());
  Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get("s");
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ((*ds)->build_options.st, recommended);
  // A 5th-percentile threshold groups tightly: far more groups than the
  // coarse 0.5 build would produce.
  EXPECT_GT((*ds)->base->TotalGroups(), 10u);
}

}  // namespace
}  // namespace onex
