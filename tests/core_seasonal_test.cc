#include "onex/core/seasonal.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numbers>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/ts/normalization.h"

namespace onex {
namespace {

/// A series with an exact planted period: sin with period `period`, lightly
/// noised, `cycles` repetitions.
std::shared_ptr<const Dataset> PeriodicDataset(std::size_t period,
                                               std::size_t cycles,
                                               double noise = 0.01,
                                               std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<double> vals;
  for (std::size_t i = 0; i < period * cycles; ++i) {
    vals.push_back(std::sin(2.0 * std::numbers::pi *
                            static_cast<double>(i) /
                            static_cast<double>(period)) +
                   rng.Gaussian(0.0, noise));
  }
  Dataset ds("periodic");
  ds.Add(TimeSeries("wave", std::move(vals)));
  Result<Dataset> norm = Normalize(ds, NormalizationKind::kMinMaxDataset);
  return std::make_shared<const Dataset>(std::move(norm).value());
}

OnexBase BuildBase(std::shared_ptr<const Dataset> ds, std::size_t length,
                   double st = 0.1) {
  BaseBuildOptions opt;
  opt.st = st;
  opt.min_length = length;
  opt.max_length = length;
  return std::move(OnexBase::Build(std::move(ds), opt)).value();
}

TEST(SeasonalTest, RecoversPlantedPeriod) {
  const std::size_t period = 12;
  auto ds = PeriodicDataset(period, 8);
  const OnexBase base = BuildBase(ds, period);

  SeasonalOptions opt;
  opt.length = period;
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, opt);
  ASSERT_TRUE(patterns.ok());
  ASSERT_FALSE(patterns->empty());
  const SeasonalPattern& top = patterns->front();
  // The dominant pattern repeats at the planted period.
  EXPECT_EQ(top.typical_gap, period);
  EXPECT_GE(top.occurrences.size(), 6u);
  EXPECT_EQ(top.length, period);
}

TEST(SeasonalTest, OccurrencesAreSortedAndNonOverlapping) {
  auto ds = PeriodicDataset(10, 10);
  const OnexBase base = BuildBase(ds, 10);
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, {});
  ASSERT_TRUE(patterns.ok());
  for (const SeasonalPattern& p : *patterns) {
    for (std::size_t i = 1; i < p.occurrences.size(); ++i) {
      EXPECT_LT(p.occurrences[i - 1].start, p.occurrences[i].start);
      EXPECT_GE(p.occurrences[i].start, p.occurrences[i - 1].end())
          << "occurrences overlap";
    }
  }
}

TEST(SeasonalTest, AllowOverlapFindsMorOccurrences) {
  auto ds = PeriodicDataset(16, 6, 0.005);
  const OnexBase base = BuildBase(ds, 16, 0.15);
  SeasonalOptions strict;
  strict.length = 16;
  SeasonalOptions loose = strict;
  loose.allow_overlap = true;
  Result<std::vector<SeasonalPattern>> a =
      FindSeasonalPatterns(base, 0, strict);
  Result<std::vector<SeasonalPattern>> b =
      FindSeasonalPatterns(base, 0, loose);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->empty());
  ASSERT_FALSE(b->empty());
  EXPECT_GE(b->front().occurrences.size(), a->front().occurrences.size());
}

TEST(SeasonalTest, MinOccurrencesFilters) {
  auto ds = PeriodicDataset(12, 5);
  const OnexBase base = BuildBase(ds, 12);
  SeasonalOptions opt;
  opt.min_occurrences = 100;  // nothing repeats 100 times
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, opt);
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->empty());
}

TEST(SeasonalTest, TopKLimitsOutput) {
  auto ds = PeriodicDataset(8, 12, 0.05);
  const OnexBase base = BuildBase(ds, 8, 0.08);
  SeasonalOptions opt;
  opt.top_k = 2;
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, opt);
  ASSERT_TRUE(patterns.ok());
  EXPECT_LE(patterns->size(), 2u);
}

TEST(SeasonalTest, RankedByOccurrenceCountThenCohesion) {
  auto ds = PeriodicDataset(10, 10, 0.03);
  const OnexBase base = BuildBase(ds, 10, 0.12);
  SeasonalOptions opt;
  opt.top_k = 0;
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, opt);
  ASSERT_TRUE(patterns.ok());
  for (std::size_t i = 1; i < patterns->size(); ++i) {
    const SeasonalPattern& prev = (*patterns)[i - 1];
    const SeasonalPattern& cur = (*patterns)[i];
    EXPECT_TRUE(prev.occurrences.size() > cur.occurrences.size() ||
                (prev.occurrences.size() == cur.occurrences.size() &&
                 prev.cohesion <= cur.cohesion + 1e-12));
  }
}

TEST(SeasonalTest, PatternsBelongToProbedSeriesOnly) {
  // Two series: a periodic one and a flat one; probing the flat one must
  // not return the wave's patterns.
  Rng rng(5);
  Dataset raw("two");
  std::vector<double> wave;
  for (int i = 0; i < 96; ++i) {
    wave.push_back(std::sin(2.0 * std::numbers::pi * i / 12.0));
  }
  raw.Add(TimeSeries("wave", std::move(wave)));
  std::vector<double> drift;
  double v = 0.0;
  for (int i = 0; i < 96; ++i) {
    v += rng.Gaussian(0.0, 0.3);
    drift.push_back(v);
  }
  raw.Add(TimeSeries("drift", std::move(drift)));
  Result<Dataset> norm = Normalize(raw, NormalizationKind::kMinMaxDataset);
  ASSERT_TRUE(norm.ok());
  auto ds = std::make_shared<const Dataset>(std::move(norm).value());
  const OnexBase base = BuildBase(ds, 12, 0.08);

  Result<std::vector<SeasonalPattern>> wave_patterns =
      FindSeasonalPatterns(base, 0, {});
  Result<std::vector<SeasonalPattern>> drift_patterns =
      FindSeasonalPatterns(base, 1, {});
  ASSERT_TRUE(wave_patterns.ok());
  ASSERT_TRUE(drift_patterns.ok());
  for (const SeasonalPattern& p : *wave_patterns) {
    for (const SubseqRef& occ : p.occurrences) EXPECT_EQ(occ.series, 0u);
  }
  for (const SeasonalPattern& p : *drift_patterns) {
    for (const SubseqRef& occ : p.occurrences) EXPECT_EQ(occ.series, 1u);
  }
  // The wave has far more repeating structure than the drift.
  std::size_t wave_occ = 0, drift_occ = 0;
  for (const SeasonalPattern& p : *wave_patterns) {
    wave_occ = std::max(wave_occ, p.occurrences.size());
  }
  for (const SeasonalPattern& p : *drift_patterns) {
    drift_occ = std::max(drift_occ, p.occurrences.size());
  }
  EXPECT_GT(wave_occ, drift_occ);
}

TEST(SeasonalTest, InvalidArguments) {
  auto ds = PeriodicDataset(8, 4);
  const OnexBase base = BuildBase(ds, 8);
  SeasonalOptions opt;
  opt.min_occurrences = 1;
  EXPECT_EQ(FindSeasonalPatterns(base, 0, opt).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FindSeasonalPatterns(base, 99, {}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SeasonalTest, RepresentativeMatchesGroupLength) {
  auto ds = PeriodicDataset(12, 6);
  const OnexBase base = BuildBase(ds, 12);
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, {});
  ASSERT_TRUE(patterns.ok());
  for (const SeasonalPattern& p : *patterns) {
    EXPECT_EQ(p.representative.size(), p.length);
    EXPECT_GE(p.cohesion, 0.0);
  }
}

/// Patterns feed the Seasonal View directly; NaN anywhere breaks the
/// front-end silently, so every numeric field must be finite.
void CheckPatternsNaNFree(const std::vector<SeasonalPattern>& patterns) {
  for (const SeasonalPattern& p : patterns) {
    EXPECT_TRUE(std::isfinite(p.cohesion));
    for (const double v : p.representative) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(SeasonalTest, ConstantSeriesTilesIntoOnePerfectPattern) {
  // Every window of a constant series is identical: one group, zero
  // cohesion, occurrences tiling the series end to end with gap == length.
  Dataset raw("flat");
  raw.Add(TimeSeries("const", std::vector<double>(48, 0.5)));
  auto ds = std::make_shared<const Dataset>(std::move(raw));
  const OnexBase base = BuildBase(ds, 8);

  SeasonalOptions opt;
  opt.length = 8;
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, opt);
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 1u);
  const SeasonalPattern& p = patterns->front();
  EXPECT_EQ(p.occurrences.size(), 48u / 8u);
  EXPECT_EQ(p.typical_gap, 8u);
  EXPECT_DOUBLE_EQ(p.cohesion, 0.0);
  CheckPatternsNaNFree(*patterns);
}

TEST(SeasonalTest, AllIdenticalSubsequencesAcrossSeriesStayPerSeries) {
  // Identical twin series put every subsequence of both in one group; the
  // miner must still report only the probed series' occurrences.
  std::vector<double> ramp;
  for (int i = 0; i < 32; ++i) ramp.push_back(0.02 * i);
  Dataset raw("twins");
  raw.Add(TimeSeries("a", ramp));
  raw.Add(TimeSeries("b", ramp));
  auto ds = std::make_shared<const Dataset>(std::move(raw));
  const OnexBase base = BuildBase(ds, 8, /*st=*/10.0);  // one giant group

  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 1, {});
  ASSERT_TRUE(patterns.ok());
  ASSERT_FALSE(patterns->empty());
  for (const SeasonalPattern& p : *patterns) {
    for (const SubseqRef& r : p.occurrences) {
      EXPECT_EQ(r.series, 1u);
    }
  }
  CheckPatternsNaNFree(*patterns);
}

TEST(SeasonalTest, SeriesTooShortForAnyClassYieldsEmptyNotError) {
  // A length-2 series contributes no length-8 subsequences; probing it is a
  // valid question with an empty answer.
  Dataset raw("mixed");
  raw.Add(TimeSeries("long", std::vector<double>(40, 0.0)));
  raw.Add(TimeSeries("tiny", std::vector<double>{0.1, 0.9}));
  auto ds = std::make_shared<const Dataset>(std::move(raw));
  const OnexBase base = BuildBase(ds, 8);

  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 1, {});
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->empty());
}

TEST(SeasonalTest, LengthWithNoClassYieldsEmptyNotError) {
  auto ds = PeriodicDataset(8, 4);
  const OnexBase base = BuildBase(ds, 8);
  SeasonalOptions opt;
  opt.length = 9;  // base has only a length-8 class
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, opt);
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->empty());
}

TEST(SeasonalTest, NoisyDataIsNaNFree) {
  auto ds = PeriodicDataset(10, 6, /*noise=*/0.2, /*seed=*/17);
  const OnexBase base = BuildBase(ds, 10, /*st=*/0.3);
  SeasonalOptions opt;
  opt.allow_overlap = true;
  opt.top_k = 0;  // everything
  Result<std::vector<SeasonalPattern>> patterns =
      FindSeasonalPatterns(base, 0, opt);
  ASSERT_TRUE(patterns.ok());
  CheckPatternsNaNFree(*patterns);
}

}  // namespace
}  // namespace onex
