#include "onex/gen/generators.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/math_utils.h"
#include "onex/distance/dtw.h"
#include "onex/gen/economic_panel.h"
#include "onex/gen/electricity.h"

namespace onex::gen {
namespace {

TEST(RandomWalkTest, ShapeAndDeterminism) {
  RandomWalkOptions opt;
  opt.num_series = 7;
  opt.length = 33;
  opt.seed = 11;
  const Dataset a = MakeRandomWalks(opt);
  const Dataset b = MakeRandomWalks(opt);
  ASSERT_EQ(a.size(), 7u);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].length(), 33u);
    EXPECT_EQ(a[s].values(), b[s].values());  // same seed, same data
  }
  opt.seed = 12;
  const Dataset c = MakeRandomWalks(opt);
  EXPECT_NE(a[0].values(), c[0].values());
}

TEST(RandomWalkTest, StepsLookLikeGaussianIncrements) {
  RandomWalkOptions opt;
  opt.num_series = 1;
  opt.length = 5000;
  opt.step_stddev = 2.0;
  const Dataset ds = MakeRandomWalks(opt);
  std::vector<double> steps;
  for (std::size_t i = 1; i < ds[0].length(); ++i) {
    steps.push_back(ds[0][i] - ds[0][i - 1]);
  }
  EXPECT_NEAR(Mean(steps), 0.0, 0.15);
  EXPECT_NEAR(StdDev(steps), 2.0, 0.15);
}

TEST(SineFamilyTest, LabelsPartitionIntoShapes) {
  SineFamilyOptions opt;
  opt.num_series = 20;
  opt.num_shapes = 4;
  opt.seed = 5;
  const Dataset ds = MakeSineFamilies(opt);
  std::set<std::string> labels;
  for (const TimeSeries& ts : ds.series()) labels.insert(ts.label());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(SineFamilyTest, SameShapeSeriesAreCloserThanCrossShape) {
  SineFamilyOptions opt;
  opt.num_series = 8;
  opt.num_shapes = 2;
  opt.noise_stddev = 0.02;
  opt.seed = 21;
  const Dataset ds = MakeSineFamilies(opt);
  // Series 0 and 2 share shape 0; series 1 has shape 1.
  const double same = DtwDistance(ds[0].AsSpan(), ds[2].AsSpan());
  const double cross = DtwDistance(ds[0].AsSpan(), ds[1].AsSpan());
  EXPECT_LT(same, cross);
}

TEST(WarpedShapeTest, WarpingCreatesEdDtwGap) {
  // The regime the accuracy experiment needs: same-template series remain
  // DTW-close but drift apart under ED.
  WarpedShapeOptions opt;
  opt.num_series = 8;
  opt.num_shapes = 2;
  opt.warp_intensity = 0.4;
  opt.noise_stddev = 0.01;
  opt.seed = 9;
  const Dataset ds = MakeWarpedShapes(opt);
  // 0, 2, 4, 6 share template 0.
  double dtw_sum = 0.0;
  double ed_proxy_sum = 0.0;
  int pairs = 0;
  for (const std::size_t i : {0u, 2u, 4u}) {
    for (const std::size_t j : {2u, 4u, 6u}) {
      if (i >= j) continue;
      dtw_sum += DtwDistance(ds[i].AsSpan(), ds[j].AsSpan());
      ed_proxy_sum += DtwDistance(ds[i].AsSpan(), ds[j].AsSpan(), 0);  // = ED
      ++pairs;
    }
  }
  EXPECT_LT(dtw_sum / pairs, 0.7 * ed_proxy_sum / pairs)
      << "warping should make DTW meaningfully tighter than ED";
}

TEST(WarpedShapeTest, SharedTemplateSeedAlignsCorpusAndProbes) {
  // Two datasets with the same template_seed but different instance seeds:
  // cross-dataset same-template pairs stay DTW-close (fresh warps of one
  // shape), while datasets with different template seeds drift apart.
  WarpedShapeOptions a_opt;
  a_opt.num_series = 8;
  a_opt.num_shapes = 2;
  a_opt.seed = 1;
  a_opt.template_seed = 77;
  WarpedShapeOptions b_opt = a_opt;
  b_opt.seed = 2;  // same templates, new instances
  WarpedShapeOptions c_opt = a_opt;
  c_opt.seed = 2;
  c_opt.template_seed = 991;  // different templates
  const Dataset a = MakeWarpedShapes(a_opt);
  const Dataset b = MakeWarpedShapes(b_opt);
  const Dataset c = MakeWarpedShapes(c_opt);
  EXPECT_NE(a[0].values(), b[0].values());  // instances differ
  const double same_tpl = DtwDistance(a[0].AsSpan(), b[0].AsSpan());
  const double diff_tpl = DtwDistance(a[0].AsSpan(), c[0].AsSpan());
  EXPECT_LT(same_tpl, diff_tpl);
}

TEST(WarpedShapeTest, Deterministic) {
  WarpedShapeOptions opt;
  opt.seed = 31;
  opt.num_series = 4;
  opt.length = 40;
  const Dataset a = MakeWarpedShapes(opt);
  const Dataset b = MakeWarpedShapes(opt);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].values(), b[s].values());
  }
}

TEST(ElectricityTest, PlantedDailyPeriodIsRecoverable) {
  ElectricityOptions opt;
  opt.num_households = 1;
  opt.length = 24 * 60;  // 60 days hourly
  opt.samples_per_day = 24;
  opt.noise_stddev = 0.05;
  const Dataset ds = MakeElectricityLoad(opt);
  ASSERT_EQ(ds.size(), 1u);
  // Autocorrelation peaks at the daily lag.
  const double daily = Autocorrelation(ds[0].AsSpan(), 24);
  const double off_period = Autocorrelation(ds[0].AsSpan(), 17);
  EXPECT_GT(daily, 0.5);
  EXPECT_GT(daily, off_period + 0.2);
}

TEST(ElectricityTest, WeeklyStructurePresent) {
  ElectricityOptions opt;
  opt.num_households = 1;
  opt.length = 24 * 7 * 20;  // 20 weeks
  opt.weekly_amplitude = 0.8;
  const Dataset ds = MakeElectricityLoad(opt);
  const double weekly = Autocorrelation(ds[0].AsSpan(), 24 * 7);
  const double daily = Autocorrelation(ds[0].AsSpan(), 24);
  EXPECT_GT(weekly, daily - 0.05)
      << "weekly lag should correlate at least as well as daily";
}

TEST(ElectricityTest, MultipleHouseholdsDiffer) {
  ElectricityOptions opt;
  opt.num_households = 3;
  opt.length = 24 * 10;
  const Dataset ds = MakeElectricityLoad(opt);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_NE(ds[0].values(), ds[1].values());
  EXPECT_NE(ds[1].values(), ds[2].values());
}

TEST(EconomicPanelTest, FiftyStates) {
  EXPECT_EQ(StateNames().size(), 50u);
  const Dataset ds = MakeEconomicPanel({});
  ASSERT_EQ(ds.size(), 50u);
  ASSERT_TRUE(ds.FindByName("Massachusetts").ok());
  ASSERT_TRUE(ds.FindByName("Arkansas").ok());
}

TEST(EconomicPanelTest, PartnerTracksMassachusetts) {
  EconomicPanelOptions opt;
  opt.years = 30;
  const Dataset ds = MakeEconomicPanel(opt);
  const std::size_t ma = *ds.FindByName("Massachusetts");
  const std::size_t partner = *ds.FindByName(opt.partner_state);
  // The partner is MA lagged by one year: shifted correlation is very high.
  std::vector<double> ma_head(ds[ma].values().begin(),
                              ds[ma].values().end() - 1);
  std::vector<double> partner_tail(ds[partner].values().begin() + 1,
                                   ds[partner].values().end());
  EXPECT_GT(PearsonCorrelation(ma_head, partner_tail), 0.95);

  // And the partner is the closest state to MA under DTW.
  double partner_dtw =
      DtwDistance(ds[ma].AsSpan(), ds[partner].AsSpan());
  int closer = 0;
  for (std::size_t s = 0; s < ds.size(); ++s) {
    if (s == ma || s == partner) continue;
    if (DtwDistance(ds[ma].AsSpan(), ds[s].AsSpan()) < partner_dtw) ++closer;
  }
  EXPECT_EQ(closer, 0) << "a non-partner state is closer to MA than the "
                          "planted partner";
}

TEST(EconomicPanelTest, IndicatorScalesDifferByOrdersOfMagnitude) {
  EconomicPanelOptions growth_opt;
  growth_opt.indicator = Indicator::kGrowthRate;
  EconomicPanelOptions unemp_opt;
  unemp_opt.indicator = Indicator::kUnemployment;
  const Dataset growth = MakeEconomicPanel(growth_opt);
  const Dataset unemp = MakeEconomicPanel(unemp_opt);
  const auto [glo, ghi] = growth.ValueRange();
  const auto [ulo, uhi] = unemp.ValueRange();
  // Growth rates are single-digit percents; unemployment is tens of
  // thousands of people: the threshold-recommendation motivation.
  EXPECT_LT(ghi - glo, 100.0);
  EXPECT_GT(uhi - ulo, 10000.0);
}

TEST(EconomicPanelTest, LabelsEncodeBlocks) {
  EconomicPanelOptions opt;
  opt.num_blocks = 5;
  const Dataset ds = MakeEconomicPanel(opt);
  std::set<std::string> labels;
  for (const TimeSeries& ts : ds.series()) labels.insert(ts.label());
  EXPECT_EQ(labels.size(), 5u);
}

TEST(EconomicPanelTest, TechEmploymentTrendsUpward) {
  EconomicPanelOptions opt;
  opt.indicator = Indicator::kTechEmployment;
  opt.years = 30;
  const Dataset ds = MakeEconomicPanel(opt);
  // Drift dominates: most states end higher than they start.
  int rising = 0;
  for (const TimeSeries& ts : ds.series()) {
    if (ts.values().back() > ts.values().front()) ++rising;
  }
  EXPECT_GT(rising, 40);
}

TEST(IndicatorTest, Names) {
  EXPECT_STREQ(IndicatorToString(Indicator::kGrowthRate), "growth_rate");
  EXPECT_STREQ(IndicatorToString(Indicator::kUnemployment), "unemployment");
  EXPECT_STREQ(IndicatorToString(Indicator::kTechEmployment),
               "tech_employment");
}

}  // namespace
}  // namespace onex::gen
