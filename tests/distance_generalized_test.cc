#include "onex/distance/generalized.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/distance/dtw.h"
#include "onex/distance/euclidean.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(GeneralizedTest, SquaredCostMatchesDefaultKernels) {
  Rng rng(3);
  const std::vector<double> a = testing::RandomSeries(&rng, 20);
  const std::vector<double> b = testing::RandomSeries(&rng, 20);
  EXPECT_NEAR(GeneralizedStraightDistance(a, b, PointCost::kSquared),
              Euclidean(a, b), 1e-12);
  EXPECT_NEAR(GeneralizedDtwDistance(a, b, PointCost::kSquared),
              DtwDistance(a, b), 1e-9);
  EXPECT_NEAR(GeneralizedDtwDistance(a, b, PointCost::kSquared, 3),
              DtwDistance(a, b, 3), 1e-9);
}

TEST(GeneralizedTest, AbsoluteCostKnownValues) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{1.0, 3.0};
  EXPECT_DOUBLE_EQ(GeneralizedStraightDistance(a, b, PointCost::kAbsolute),
                   4.0);
  // Warping can't help identical-length monotone gaps here: |0-1| + |0-3|.
  EXPECT_DOUBLE_EQ(GeneralizedDtwDistance(a, b, PointCost::kAbsolute), 4.0);
}

TEST(GeneralizedTest, AbsoluteDtwAbsorbsShifts) {
  std::vector<double> a(16, 0.0), b(16, 0.0);
  a[4] = 1.0;
  b[10] = 1.0;
  EXPECT_LT(GeneralizedDtwDistance(a, b, PointCost::kAbsolute), 1e-9);
  EXPECT_GT(GeneralizedStraightDistance(a, b, PointCost::kAbsolute), 1.9);
}

TEST(GeneralizedTest, DegenerateInputs) {
  const std::vector<double> empty;
  const std::vector<double> a{1.0};
  EXPECT_TRUE(std::isinf(
      GeneralizedStraightDistance(empty, a, PointCost::kAbsolute)));
  EXPECT_TRUE(
      std::isinf(GeneralizedDtwDistance(empty, a, PointCost::kAbsolute)));
  const std::vector<double> b{1.0, 2.0};
  EXPECT_TRUE(
      std::isinf(GeneralizedStraightDistance(a, b, PointCost::kSquared)));
}

TEST(GeneralizedTest, CostNamesRoundTrip) {
  for (const PointCost cost : {PointCost::kSquared, PointCost::kAbsolute}) {
    Result<PointCost> back = PointCostFromString(PointCostToString(cost));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, cost);
  }
  EXPECT_EQ(*PointCostFromString("L1"), PointCost::kAbsolute);
  EXPECT_EQ(*PointCostFromString("l2"), PointCost::kSquared);
  EXPECT_FALSE(PointCostFromString("cosine").ok());
}

class GeneralizedPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, PointCost>> {};

TEST_P(GeneralizedPropertyTest, WarpedNeverExceedsStraight) {
  // The property any ONEX-style distance pair must satisfy (DESIGN.md §5).
  const auto [seed, cost] = GetParam();
  Rng rng(seed);
  const std::size_t n = 2 + rng.UniformIndex(40);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  EXPECT_LE(GeneralizedDtwDistance(a, b, cost),
            GeneralizedStraightDistance(a, b, cost) + 1e-9);
}

TEST_P(GeneralizedPropertyTest, SymmetricAndZeroOnIdentity) {
  const auto [seed, cost] = GetParam();
  Rng rng(seed + 77);
  const std::vector<double> a =
      testing::RandomSeries(&rng, 2 + rng.UniformIndex(25));
  const std::vector<double> b =
      testing::RandomSeries(&rng, 2 + rng.UniformIndex(25));
  EXPECT_NEAR(GeneralizedDtwDistance(a, b, cost),
              GeneralizedDtwDistance(b, a, cost), 1e-9);
  EXPECT_NEAR(GeneralizedDtwDistance(a, a, cost), 0.0, 1e-12);
}

TEST_P(GeneralizedPropertyTest, BandWideningIsMonotone) {
  const auto [seed, cost] = GetParam();
  Rng rng(seed + 200);
  const std::size_t n = 4 + rng.UniformIndex(20);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  double prev = GeneralizedDtwDistance(a, b, cost, 0);
  for (int w = 2; w <= static_cast<int>(n); w += 2) {
    const double cur = GeneralizedDtwDistance(a, b, cost, w);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCosts, GeneralizedPropertyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Values(PointCost::kSquared,
                                         PointCost::kAbsolute)));

}  // namespace
}  // namespace onex
