/// Cascade-equivalence crosscheck (DESIGN.md §14): the LB_Kim → LB_Keogh →
/// early-abandon-DTW cascade is a pure work-saving device. With
/// explore_top_groups = k = 1 the refined group is the exact-argmin group
/// under every toggle combination, so the best match — ref, group and
/// bit-level distances — must be identical with the cascade on, off, or
/// partially on, across windows including 0 and full. The suite also pins
/// the QueryStats attribution invariants, the degenerate inputs (lengths
/// 1–3, constant series) and scalar-vs-SIMD kernel-table agreement.
#include "onex/core/query_processor.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/distance/kernels.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace onex {
namespace {

struct Fixture {
  std::shared_ptr<const Dataset> dataset;
  std::unique_ptr<OnexBase> base;
};

Fixture MakeFixture(std::uint64_t seed, std::size_t num = 10,
                    std::size_t len = 32, std::size_t min_length = 4,
                    std::size_t max_length = 16) {
  gen::SineFamilyOptions opt;
  opt.num_series = num;
  opt.length = len;
  opt.seed = seed;
  Dataset raw = gen::MakeSineFamilies(opt);
  Result<Dataset> norm = Normalize(raw, NormalizationKind::kMinMaxDataset);
  Fixture f;
  f.dataset = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions bopt;
  bopt.st = 0.18;
  bopt.min_length = min_length;
  bopt.max_length = max_length;
  bopt.length_step = 2;
  f.base = std::make_unique<OnexBase>(
      std::move(OnexBase::Build(f.dataset, bopt)).value());
  return f;
}

/// Every QueryStats must satisfy the cascade attribution identities
/// regardless of toggles: each lower-bound prune is credited to exactly one
/// stage, and dtw_evals counts every dynamic program that ran.
void CheckStatsInvariants(const QueryStats& s, const QueryOptions& opt) {
  EXPECT_EQ(s.pruned_kim + s.pruned_keogh,
            s.groups_pruned_lb + s.members_pruned_lb);
  EXPECT_EQ(s.dtw_evals, s.rep_dtw_evaluations + s.member_dtw_evaluations);
  if (!opt.use_lower_bounds) {
    EXPECT_EQ(s.groups_pruned_lb, 0u);
    EXPECT_EQ(s.members_pruned_lb, 0u);
    EXPECT_EQ(s.pruned_kim, 0u);
    EXPECT_EQ(s.pruned_keogh, 0u);
  }
}

class CascadeCrosscheckTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CascadeCrosscheckTest, TogglesNeverChangeTheTop1Answer) {
  const Fixture f = MakeFixture(GetParam());
  QueryProcessor qp(f.base.get());
  Rng rng(GetParam() * 13 + 5);

  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t series = rng.UniformIndex(f.dataset->size());
    const std::size_t qlen = 6 + rng.UniformIndex(8);
    const std::size_t start =
        rng.UniformIndex((*f.dataset)[series].length() - qlen + 1);
    const std::span<const double> vals =
        (*f.dataset)[series].Slice(start, qlen);
    std::vector<double> q(vals.begin(), vals.end());
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);

    // Windows: unconstrained, degenerate 0 (diagonal-only ED), narrow, and
    // wider than any admissible length (effectively full).
    for (const int window : {kNoWindow, 0, 1, 3, 64}) {
      QueryOptions off;
      off.window = window;
      off.use_lower_bounds = false;
      off.use_early_abandon = false;
      QueryStats off_stats;
      Result<BestMatch> want = qp.BestMatchQuery(q, off, &off_stats);
      ASSERT_TRUE(want.ok()) << want.status();
      CheckStatsInvariants(off_stats, off);

      for (const bool lb : {true, false}) {
        for (const bool ea : {true, false}) {
          QueryOptions on = off;
          on.use_lower_bounds = lb;
          on.use_early_abandon = ea;
          QueryStats on_stats;
          Result<BestMatch> got = qp.BestMatchQuery(q, on, &on_stats);
          ASSERT_TRUE(got.ok()) << got.status();
          CheckStatsInvariants(on_stats, on);

          // Same answer, bit for bit: the cascade only skips candidates it
          // proves cannot beat the horizon, and kept DTWs run the exact
          // same arithmetic whether or not abandoning is armed.
          EXPECT_EQ(got->ref, want->ref) << "window=" << window;
          EXPECT_EQ(got->group_index, want->group_index);
          EXPECT_EQ(got->dtw, want->dtw);
          EXPECT_EQ(got->normalized_dtw, want->normalized_dtw);
          EXPECT_EQ(got->rep_dtw, want->rep_dtw);

          // Pruning can only remove work, never add it.
          EXPECT_LE(on_stats.rep_dtw_evaluations,
                    off_stats.rep_dtw_evaluations);
          EXPECT_LE(on_stats.dtw_evals, off_stats.dtw_evals);
          EXPECT_EQ(on_stats.groups_total, off_stats.groups_total);
        }
      }
    }
  }
}

TEST_P(CascadeCrosscheckTest, ScalarAndSimdTablesAgreeOnMatches) {
  const Fixture f = MakeFixture(GetParam());
  QueryProcessor qp(f.base.get());
  const std::span<const double> q = (*f.dataset)[0].Slice(1, 10);

  const KernelMode before = GetKernelMode();
  for (const bool exhaustive : {false, true}) {
    QueryOptions opt;
    opt.exhaustive = exhaustive;

    SetKernelMode(KernelMode::kScalar);
    QueryStats ss;
    Result<BestMatch> scalar = qp.BestMatchQuery(q, opt, &ss);
    SetKernelMode(KernelMode::kSimd);
    QueryStats vs;
    Result<BestMatch> simd = qp.BestMatchQuery(q, opt, &vs);
    SetKernelMode(before);

    ASSERT_TRUE(scalar.ok()) << scalar.status();
    ASSERT_TRUE(simd.ok()) << simd.status();
    CheckStatsInvariants(ss, opt);
    CheckStatsInvariants(vs, opt);
    // The tables may differ in final ulps (documented for the AVX2 DTW
    // prefix scan), so the answer agrees to tolerance; on this data no two
    // candidates are within that tolerance of each other, so the ref
    // agrees exactly.
    EXPECT_EQ(simd->ref, scalar->ref) << "exhaustive=" << exhaustive;
    EXPECT_NEAR(simd->dtw, scalar->dtw, 1e-9 * (1.0 + scalar->dtw));
    EXPECT_NEAR(simd->normalized_dtw, scalar->normalized_dtw,
                1e-9 * (1.0 + scalar->normalized_dtw));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeCrosscheckTest,
                         ::testing::Values(3, 17, 29, 41));

TEST(CascadeDegenerateTest, TinyQueriesAndValidation) {
  const Fixture f = MakeFixture(9, 8, 24, 2, 8);
  QueryProcessor qp(f.base.get());

  // Length-1 queries are rejected up front.
  const std::vector<double> one{0.5};
  EXPECT_FALSE(qp.KnnQuery(one, 1).ok());

  // Lengths 2 and 3 run the full cascade; answers match cascade-off.
  for (const std::size_t qlen : {2u, 3u}) {
    const std::span<const double> q = (*f.dataset)[1].Slice(0, qlen);
    for (const int window : {kNoWindow, 0, 1}) {
      QueryOptions on;
      on.window = window;
      QueryOptions off = on;
      off.use_lower_bounds = false;
      off.use_early_abandon = false;
      QueryStats son, soff;
      Result<BestMatch> a = qp.BestMatchQuery(q, on, &son);
      Result<BestMatch> b = qp.BestMatchQuery(q, off, &soff);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      CheckStatsInvariants(son, on);
      CheckStatsInvariants(soff, off);
      EXPECT_EQ(a->dtw, b->dtw) << "qlen=" << qlen << " window=" << window;
      EXPECT_EQ(a->normalized_dtw, b->normalized_dtw);
    }
  }
}

TEST(CascadeDegenerateTest, ConstantSeriesFindExactZeroUnderBothTables) {
  // A dataset of constant series: every subsequence is identical after
  // grouping, all distances are exactly zero, and nothing the cascade or
  // the SIMD tables do may perturb that (the zero-clamp in the AVX2 DTW
  // scan exists precisely so self-distances stay exactly 0).
  Dataset raw;
  for (int s = 0; s < 4; ++s) {
    raw.Add(TimeSeries("const" + std::to_string(s),
                       std::vector<double>(20, 0.25 * (s + 1))));
  }
  Result<Dataset> norm = Normalize(raw, NormalizationKind::kMinMaxDataset);
  ASSERT_TRUE(norm.ok());
  auto ds = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions bopt;
  bopt.st = 0.1;
  bopt.min_length = 4;
  bopt.max_length = 12;
  Result<OnexBase> base = OnexBase::Build(ds, bopt);
  ASSERT_TRUE(base.ok());
  QueryProcessor qp(&*base);

  // Query an exact slice of a normalized series so a bit-equal candidate
  // exists: every cost on the diagonal is exactly zero.
  const std::span<const double> qs = (*ds)[1].Slice(0, 8);
  const std::vector<double> q(qs.begin(), qs.end());
  const KernelMode before = GetKernelMode();
  for (const KernelMode mode : {KernelMode::kScalar, KernelMode::kSimd}) {
    SetKernelMode(mode);
    for (const bool lb : {true, false}) {
      QueryOptions opt;
      opt.use_lower_bounds = lb;
      QueryStats stats;
      Result<std::vector<BestMatch>> got = qp.KnnQuery(q, 2, opt, &stats);
      ASSERT_TRUE(got.ok()) << got.status();
      CheckStatsInvariants(stats, opt);
      for (const BestMatch& m : *got) {
        EXPECT_EQ(m.dtw, 0.0);
        EXPECT_EQ(m.normalized_dtw, 0.0);
      }
    }
  }
  SetKernelMode(before);
}

}  // namespace
}  // namespace onex
