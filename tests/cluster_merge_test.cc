// Satellite regression for the coordinator's deterministic top-k merge:
// equal-distance candidates must order by (dataset, series, start, length)
// so the merged answer is bitwise identical for ANY shard assignment or
// arrival order (DESIGN.md §16).

#include "onex/net/cluster_merge.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "onex/json/json.h"

namespace onex::net {
namespace {

ShardMatch Candidate(const std::string& dataset, double ndtw, int series,
                     int start, int length) {
  ShardMatch c;
  c.dataset = dataset;
  json::Value m = json::Value::MakeObject();
  m.Set("dataset", dataset);
  m.Set("normalized_dtw", ndtw);
  m.Set("series", series);
  m.Set("start", start);
  m.Set("length", length);
  c.match = std::move(m);
  c.values = {static_cast<double>(series), static_cast<double>(start)};
  return c;
}

std::string DumpOrder(const std::vector<ShardMatch>& merged) {
  std::string out;
  for (const ShardMatch& c : merged) out += c.match.Dump() + "\n";
  return out;
}

TEST(ClusterMerge, DistanceOrdersFirst) {
  std::vector<ShardMatch> cands;
  cands.push_back(Candidate("b", 0.50, 0, 0, 32));
  cands.push_back(Candidate("a", 0.25, 9, 9, 32));
  cands.push_back(Candidate("c", 0.75, 1, 1, 32));
  MergeTopK(&cands, 3);
  EXPECT_EQ(cands[0].dataset, "a");
  EXPECT_EQ(cands[1].dataset, "b");
  EXPECT_EQ(cands[2].dataset, "c");
}

TEST(ClusterMerge, EqualDistanceBreaksTiesStructurally) {
  // All candidates share the exact same distance; the ordering must come
  // entirely from (dataset, series, start, length).
  std::vector<ShardMatch> cands;
  cands.push_back(Candidate("b", 0.5, 0, 0, 16));
  cands.push_back(Candidate("a", 0.5, 2, 0, 16));
  cands.push_back(Candidate("a", 0.5, 1, 7, 16));
  cands.push_back(Candidate("a", 0.5, 1, 3, 16));
  cands.push_back(Candidate("a", 0.5, 1, 3, 8));
  MergeTopK(&cands, 5);
  const std::string order = DumpOrder(cands);
  EXPECT_EQ(cands[0].dataset, "a");
  EXPECT_EQ(cands[0].match["series"].as_number(), 1);
  EXPECT_EQ(cands[0].match["start"].as_number(), 3);
  EXPECT_EQ(cands[0].match["length"].as_number(), 8);
  EXPECT_EQ(cands[4].dataset, "b");
  // The same candidates in any permutation (any shard assignment / arrival
  // order) must merge to the byte-identical order.
  std::vector<std::size_t> idx(cands.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<ShardMatch> base = cands;
  do {
    std::vector<ShardMatch> perm;
    for (std::size_t i : idx) perm.push_back(base[i]);
    MergeTopK(&perm, perm.size());
    EXPECT_EQ(DumpOrder(perm), order);
  } while (std::next_permutation(idx.begin(), idx.end()));
}

TEST(ClusterMerge, PermutedShardAssignmentsMergeIdentically) {
  // Simulates 3 shards: candidates are partitioned by dataset, each shard
  // returns its list already distance-sorted, and the coordinator merges in
  // whatever order shard responses land. Every assignment of datasets to
  // shards and every response arrival order must yield the same top-k.
  std::vector<ShardMatch> all;
  for (int d = 0; d < 3; ++d) {
    const std::string name(1, static_cast<char>('a' + d));
    for (int s = 0; s < 4; ++s) {
      // Collisions on purpose: distances drawn from a tiny set of exact
      // doubles so cross-dataset ties are guaranteed.
      all.push_back(Candidate(name, 0.25 * ((s + d) % 3), s, 10 * d + s, 24));
    }
  }
  std::vector<ShardMatch> expected = all;
  MergeTopK(&expected, 5);
  const std::string want = DumpOrder(expected);

  std::vector<std::size_t> arrival = {0, 1, 2};
  do {
    // Arrival permutation: concatenate per-dataset groups in this order.
    std::vector<ShardMatch> merged;
    for (std::size_t which : arrival) {
      const std::string name(1, static_cast<char>('a' + which));
      for (const ShardMatch& c : all) {
        if (c.dataset == name) merged.push_back(c);
      }
    }
    MergeTopK(&merged, 5);
    EXPECT_EQ(DumpOrder(merged), want);
  } while (std::next_permutation(arrival.begin(), arrival.end()));
}

TEST(ClusterMerge, TruncatesToK) {
  std::vector<ShardMatch> cands;
  for (int i = 0; i < 10; ++i) cands.push_back(Candidate("a", i * 0.1, i, 0, 8));
  MergeTopK(&cands, 3);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[2].match["series"].as_number(), 2);
}

TEST(ClusterMerge, ValuesTravelWithTheirMatch) {
  std::vector<ShardMatch> cands;
  cands.push_back(Candidate("a", 0.9, 5, 50, 8));
  cands.push_back(Candidate("b", 0.1, 7, 70, 8));
  MergeTopK(&cands, 2);
  EXPECT_EQ(cands[0].values, (std::vector<double>{7, 70}));
  EXPECT_EQ(cands[1].values, (std::vector<double>{5, 50}));
}

TEST(ClusterMerge, AccumulateStatsSumsFieldwise) {
  json::Value a = json::Value::MakeObject();
  a.Set("dtw_evals", 3);
  a.Set("pruned_kim", 5);
  json::Value b = json::Value::MakeObject();
  b.Set("dtw_evals", 4);
  b.Set("groups_total", 2);
  json::Value total = json::Value::MakeObject();
  AccumulateStats(&total, a);
  AccumulateStats(&total, b);
  EXPECT_EQ(total["dtw_evals"].as_number(), 7);
  EXPECT_EQ(total["pruned_kim"].as_number(), 5);
  EXPECT_EQ(total["groups_total"].as_number(), 2);
}

TEST(ClusterMerge, ParseDatasetsOption) {
  auto names = ParseDatasetsOption("a, b ,c");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_FALSE(ParseDatasetsOption("a,,b").ok());
  EXPECT_FALSE(ParseDatasetsOption("a,b,a").ok());
  EXPECT_FALSE(ParseDatasetsOption("").ok());
}

}  // namespace
}  // namespace onex::net
