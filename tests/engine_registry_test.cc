/// DatasetRegistry behavior (DESIGN.md §11): LRU eviction under a prepared-
/// base byte budget, transparent re-preparation of evicted bases, async
/// preparation tickets, and the per-slot locking contract — queries on one
/// dataset proceed while another is being prepared.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/engine/dataset_registry.h"
#include "onex/engine/engine.h"
#include "onex/gen/generators.h"
#include "test_util.h"

namespace onex {
namespace {

Dataset MakeData(std::size_t num, std::size_t len, std::uint64_t seed) {
  gen::SineFamilyOptions opt;
  opt.num_series = num;
  opt.length = len;
  opt.seed = seed;
  return gen::MakeSineFamilies(opt);
}

BaseBuildOptions Quick() {
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

std::map<std::string, DatasetSlotInfo> DescribeByName(const Engine& engine) {
  std::map<std::string, DatasetSlotInfo> out;
  for (const DatasetSlotInfo& info : engine.registry().Describe()) {
    out[info.name] = info;
  }
  return out;
}

QuerySpec SmallQuery(std::size_t series = 0) {
  QuerySpec spec;
  spec.series = series;
  spec.start = 0;
  spec.length = 8;
  return spec;
}

TEST(MemoryUsageTest, StoreAndBaseFootprintsAgree) {
  auto ds = std::make_shared<const Dataset>(testing::SmallDataset());
  Result<OnexBase> base = OnexBase::Build(ds, Quick());
  ASSERT_TRUE(base.ok());
  std::size_t sum = 0;
  for (const LengthClass& cls : base->length_classes()) {
    ASSERT_NE(cls.store, nullptr);
    EXPECT_GT(cls.store->MemoryUsage(), 0u);
    sum += cls.store->MemoryUsage();
    sum += cls.groups.size() * sizeof(SimilarityGroup);
  }
  EXPECT_EQ(base->MemoryUsage(), sum);
  EXPECT_GT(base->MemoryUsage(), 0u);
}

TEST(EngineRegistryTest, UnlimitedBudgetKeepsEveryBaseResident) {
  Engine engine;
  for (int d = 0; d < 3; ++d) {
    const std::string name = "ds" + std::to_string(d);
    ASSERT_TRUE(
        engine.LoadDataset(name, MakeData(6, 24, 10 + static_cast<std::uint64_t>(d)))
            .ok());
    ASSERT_TRUE(engine.Prepare(name, Quick()).ok());
  }
  const auto info = DescribeByName(engine);
  for (const auto& [name, slot] : info) {
    EXPECT_TRUE(slot.prepared) << name;
    EXPECT_FALSE(slot.evicted) << name;
    EXPECT_GT(slot.prepared_bytes, 0u) << name;
  }
  EXPECT_EQ(engine.registry().prepared_budget(), 0u);
  EXPECT_GT(engine.registry().prepared_bytes(), 0u);
}

TEST(EngineRegistryTest, LruEvictionHonorsBudgetAndRepreparesTransparently) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  ASSERT_TRUE(engine.LoadDataset("b", MakeData(6, 24, 2)).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  const std::size_t bytes_a = engine.registry().prepared_bytes();
  ASSERT_GT(bytes_a, 0u);
  ASSERT_TRUE(engine.Prepare("b", Quick()).ok());
  const std::size_t bytes_b = engine.registry().prepared_bytes() - bytes_a;
  ASSERT_GT(bytes_b, 0u);

  // Room for exactly one base (whichever is larger): shrinking the budget
  // must evict the least recently used of the two, which is a.
  const std::size_t budget = std::max(bytes_a, bytes_b) * 5 / 4;
  engine.registry().SetPreparedBudget(budget);

  auto info = DescribeByName(engine);
  EXPECT_TRUE(info.at("b").prepared);
  EXPECT_FALSE(info.at("a").prepared);
  EXPECT_TRUE(info.at("a").evicted);
  EXPECT_LE(engine.registry().prepared_bytes(), budget);

  // Queries on the evicted dataset re-prepare it transparently — the caller
  // never sees FailedPrecondition — and the LRU rolls over to b.
  Result<MatchResult> m = engine.SimilaritySearch("a", SmallQuery());
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GE(m->match.normalized_dtw, 0.0);

  info = DescribeByName(engine);
  EXPECT_TRUE(info.at("a").prepared);
  EXPECT_TRUE(info.at("b").evicted);
  EXPECT_LE(engine.registry().prepared_bytes(), budget);

  // The re-prepared base answers exactly like a freshly prepared one.
  Result<MatchResult> again = engine.SimilaritySearch("a", SmallQuery());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(m->match.ref.series, again->match.ref.series);
  EXPECT_EQ(m->match.ref.start, again->match.ref.start);
  EXPECT_DOUBLE_EQ(m->match.normalized_dtw, again->match.normalized_dtw);
}

TEST(EngineRegistryTest, QueryTouchProtectsHotDatasetFromEviction) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  ASSERT_TRUE(engine.LoadDataset("b", MakeData(6, 24, 2)).ok());
  // c is deliberately smaller than a and b so admitting it evicts exactly
  // one victim.
  ASSERT_TRUE(engine.LoadDataset("c", MakeData(3, 20, 3)).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  ASSERT_TRUE(engine.Prepare("b", Quick()).ok());

  // Budget exactly fits a and b, then touch a so b is the LRU victim.
  engine.registry().SetPreparedBudget(engine.registry().prepared_bytes());
  ASSERT_TRUE(engine.SimilaritySearch("a", SmallQuery()).ok());
  ASSERT_TRUE(engine.Prepare("c", Quick()).ok());

  const auto info = DescribeByName(engine);
  EXPECT_TRUE(info.at("a").prepared) << "recently queried dataset evicted";
  EXPECT_TRUE(info.at("c").prepared);
  EXPECT_TRUE(info.at("b").evicted);
}

TEST(EngineRegistryTest, ShrinkingBudgetEvictsImmediately) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  ASSERT_GT(engine.registry().prepared_bytes(), 0u);

  engine.registry().SetPreparedBudget(1);
  // A single resident base is never the protected installee here, so the
  // shrink evicts it outright.
  EXPECT_EQ(engine.registry().prepared_bytes(), 0u);
  const auto info = DescribeByName(engine);
  EXPECT_TRUE(info.at("a").evicted);
}

TEST(EngineRegistryTest, SeriesAppendedWhileEvictedIsSearchableAfterRebuild) {
  // Regression: an append that lands while the base is evicted must not be
  // lost when the next query transparently rebuilds — the rebuild has to
  // notice the stale normalized copy and renormalize from raw.
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  const NormalizationParams frozen = (*engine.Get("a"))->norm_params;
  engine.registry().SetPreparedBudget(1);  // evict a's base
  ASSERT_TRUE(DescribeByName(engine).at("a").evicted);

  // Values far outside the frozen min/max: a rebuild that renormalized the
  // whole dataset would visibly move the parameters.
  std::vector<double> big;
  for (int i = 0; i < 24; ++i) big.push_back(50.0 + 0.5 * i);
  ASSERT_TRUE(
      engine.AppendSeries("a", TimeSeries("late", std::move(big))).ok());
  engine.registry().SetPreparedBudget(0);

  // Query the appended series by reference: resolvable only if the rebuilt
  // base's normalized dataset includes it. Exhaustive search must find the
  // subsequence itself at distance zero.
  QueryOptions exhaustive;
  exhaustive.exhaustive = true;
  const Result<MatchResult> m =
      engine.SimilaritySearch("a", SmallQuery(6), exhaustive);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_NEAR(m->match.normalized_dtw, 0.0, 1e-12);
  EXPECT_EQ(m->match.ref.series, 6u);

  const Result<std::shared_ptr<const PreparedDataset>> snapshot =
      engine.Get("a");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*snapshot)->raw->size(), 7u);
  EXPECT_EQ((*snapshot)->normalized->size(), 7u);
  // The frozen-normalization contract survives eviction: the rebuild
  // normalizes only the newcomer with the original parameters; it never
  // rescales the whole dataset around the appended values.
  EXPECT_DOUBLE_EQ((*snapshot)->norm_params.min, frozen.min);
  EXPECT_DOUBLE_EQ((*snapshot)->norm_params.max, frozen.max);
}

TEST(EngineRegistryTest, ExplicitRePrepareRebaselinesNormalization) {
  // The flip side of the frozen contract: a resident append keeps the old
  // extrema (newcomer squeezed through them), and an analyst's explicit
  // re-PREPARE is the one knob that folds the new values into the scale.
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  const double frozen_max = (*engine.Get("a"))->norm_params.max;
  ASSERT_LT(frozen_max, 10.0);  // sine families stay near [-1, 1]

  std::vector<double> big;
  for (int i = 0; i < 24; ++i) big.push_back(50.0 + 0.5 * i);
  ASSERT_TRUE(
      engine.AppendSeries("a", TimeSeries("late", std::move(big))).ok());
  // Resident append froze the parameters...
  EXPECT_DOUBLE_EQ((*engine.Get("a"))->norm_params.max, frozen_max);

  // ...and re-preparing re-baselines them over the extended raw data.
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  EXPECT_GE((*engine.Get("a"))->norm_params.max, 50.0);
  EXPECT_EQ((*engine.Get("a"))->normalized->size(), 7u);
}

TEST(EngineRegistryTest, AppendDuringTransparentRebuildIsNeverLost) {
  // A Replace landing while the rebuild is in flight must win over the
  // rebuild's stale snapshot (conditional install + retry): whatever the
  // interleaving, the appended series is in the final dataset.
  for (int round = 0; round < 5; ++round) {
    Engine engine;
    ASSERT_TRUE(engine.LoadDataset("a", MakeData(8, 32, 21)).ok());
    BaseBuildOptions opt;
    opt.st = 0.2;
    opt.min_length = 4;
    opt.max_length = 24;
    ASSERT_TRUE(engine.Prepare("a", opt).ok());
    engine.registry().SetPreparedBudget(1);  // evict
    engine.registry().SetPreparedBudget(0);

    std::thread querier([&engine] {
      // Triggers the transparent rebuild.
      const Result<MatchResult> m = engine.SimilaritySearch("a", SmallQuery());
      EXPECT_TRUE(m.ok()) << m.status().ToString();
    });
    Rng rng(static_cast<std::uint64_t>(round) + 1);
    const Status appended = engine.AppendSeries(
        "a", TimeSeries("late", testing::SmoothSeries(&rng, 32)));
    ASSERT_TRUE(appended.ok());
    querier.join();

    const Result<std::shared_ptr<const PreparedDataset>> snapshot =
        engine.Get("a");
    ASSERT_TRUE(snapshot.ok());
    ASSERT_EQ((*snapshot)->raw->size(), 9u) << "append lost in round " << round;
    // And the appended series is queryable (rebuilding again if the
    // rebuild lost the install race and the served base predates it).
    QueryOptions exhaustive;
    exhaustive.exhaustive = true;
    const Result<MatchResult> m =
        engine.SimilaritySearch("a", SmallQuery(8), exhaustive);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
  }
}

TEST(EngineRegistryTest, NeverPreparedDatasetStillFailsPrecondition) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("raw", MakeData(4, 16, 9)).ok());
  const Result<MatchResult> m = engine.SimilaritySearch("raw", SmallQuery());
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRegistryTest, DropReleasesAccountedBytes) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  ASSERT_GT(engine.registry().prepared_bytes(), 0u);
  ASSERT_TRUE(engine.DropDataset("a").ok());
  EXPECT_EQ(engine.registry().prepared_bytes(), 0u);
  EXPECT_TRUE(engine.registry().Describe().empty());
}

TEST(EngineRegistryTest, AsyncPrepareCompletesAndReportsStatus) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  PrepareTicket ticket = engine.PrepareAsync("a", Quick());
  ASSERT_TRUE(ticket.valid());
  EXPECT_TRUE(ticket.Wait().ok());
  EXPECT_TRUE(DescribeByName(engine).at("a").prepared);

  PrepareTicket missing = engine.PrepareAsync("nope", Quick());
  EXPECT_EQ(missing.Wait().code(), StatusCode::kNotFound);
}

TEST(EngineRegistryTest, DestructionDrainsInFlightPrepareJobs) {
  // The registry destructor must wait for scheduled jobs; under ASan this
  // catches any use-after-free of slots or accounting.
  {
    Engine engine;
    ASSERT_TRUE(engine.LoadDataset("big", MakeData(10, 64, 5)).ok());
    BaseBuildOptions opt;
    opt.st = 0.2;
    engine.PrepareAsync("big", opt);
  }  // engine destroyed with the job possibly still running
  SUCCEED();
}

TEST(EngineRegistryTest, MatchOnAIsNotBlockedByPrepareOfB) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", MakeData(6, 24, 1)).ok());
  ASSERT_TRUE(engine.Prepare("a", Quick()).ok());
  // Warm up: pool started, caches touched, one query verified.
  ASSERT_TRUE(engine.SimilaritySearch("a", SmallQuery()).ok());

  BaseBuildOptions heavy;
  heavy.st = 0.15;
  heavy.min_length = 4;
  heavy.max_length = 0;  // every length up to the longest series

  // A full-length sweep over b is orders of magnitude heavier than one
  // query on a, so queries must observably complete while the job runs.
  // Wall-clock overlap can still be starved on a loaded one-core runner,
  // so escalate b's size until at least one query lands mid-prepare
  // instead of asserting on a single timing.
  int overlapped = 0;
  for (std::size_t weight = 16; weight <= 128 && overlapped == 0;
       weight *= 2) {
    const std::string bname = "b" + std::to_string(weight);
    gen::RandomWalkOptions wopt;
    wopt.num_series = weight;
    wopt.length = 96;
    wopt.seed = 11;
    ASSERT_TRUE(engine.LoadDataset(bname, gen::MakeRandomWalks(wopt)).ok());

    PrepareTicket ticket = engine.PrepareAsync(bname, heavy);
    ASSERT_TRUE(ticket.valid());
    int issued = 0;
    while (!ticket.done()) {
      Result<MatchResult> m = engine.SimilaritySearch(
          "a", SmallQuery(static_cast<std::size_t>(issued % 6)));
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      ++issued;
      if (!ticket.done()) ++overlapped;
    }
    ASSERT_TRUE(ticket.Wait().ok());
    ASSERT_TRUE(DescribeByName(engine).at(bname).prepared);
  }
  EXPECT_GT(overlapped, 0)
      << "no query on dataset a completed while any prepare of b ran — "
         "per-slot isolation is broken";
}

TEST(EngineRegistryTest, RegistryOptionsConstructorAppliesBudget) {
  DatasetRegistryOptions opt;
  opt.prepared_budget_bytes = 123456;
  Engine engine(opt);
  EXPECT_EQ(engine.registry().prepared_budget(), 123456u);
}

}  // namespace
}  // namespace onex
