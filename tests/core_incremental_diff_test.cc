/// Differential oracle suite for streaming maintenance (DESIGN.md §12):
/// randomized schedules of ExtendSeries/AppendSeries ops, each checked
/// against two independent oracles — a from-scratch rebuild over the final
/// dataset (grouping-level agreement) and the brute-force exact scan
/// (answer-quality agreement within the paper's approximation bound). 8
/// seeds x 25 schedules = 200 schedules per run, all deterministic.
#include "onex/core/incremental.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/baseline/brute_force.h"
#include "onex/common/random.h"
#include "onex/core/onex_base.h"
#include "onex/core/query_processor.h"
#include "onex/distance/euclidean.h"
#include "test_util.h"

namespace onex {
namespace {

constexpr double kSt = 0.3;
constexpr std::size_t kMinLen = 4;
constexpr std::size_t kLenStep = 2;

BaseBuildOptions Options(CentroidPolicy policy) {
  BaseBuildOptions opt;
  opt.st = kSt;
  opt.min_length = kMinLen;
  opt.max_length = 0;  // dataset max: grows when tails or longer series arrive
  opt.length_step = kLenStep;
  opt.centroid_policy = policy;
  return opt;
}

/// Largest member-to-centroid normalized ED across the whole base. The
/// paper's ST bound assumes every member sits within ST/2 of its
/// representative; incremental running-mean maintenance can exceed that
/// (that excess is exactly the drift ExtendSeries reports), and the
/// provable answer bound widens with it: ans <= opt + 2 * max_radius.
/// Under kFixedLeader the invariant is exact and this returns <= ST/2.
double MaxMemberRadius(const OnexBase& base) {
  double max_d = 0.0;
  for (const LengthClass& cls : base.length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        max_d = std::max(max_d, NormalizedEuclidean(
                                    g.centroid_span(),
                                    ref.Resolve(base.dataset())));
      }
    }
  }
  return max_d;
}

/// One randomized maintenance schedule: grows `base` (the maintained
/// structure) and `mirror` (a plain dataset) through the same ops.
void RunSchedule(Rng* rng, OnexBase* base, Dataset* mirror) {
  const std::size_t ops = 3 + rng->UniformIndex(3);
  for (std::size_t op = 0; op < ops; ++op) {
    if (rng->Bernoulli(0.35)) {
      // A whole new series joins (sometimes longer than anything before,
      // opening fresh length classes mid-schedule).
      const std::size_t len = 6 + rng->UniformIndex(9);
      TimeSeries fresh("arr_" + std::to_string(op),
                       testing::SmoothSeries(rng, len));
      Result<OnexBase> next = AppendSeries(*base, fresh);
      ASSERT_TRUE(next.ok()) << next.status();
      *base = std::move(next).value();
      mirror->Add(std::move(fresh));
    } else if (rng->Bernoulli(0.3)) {
      // Batched multi-extend: several tails in one maintenance step,
      // including duplicate targets (merged in arrival order).
      std::vector<SeriesExtension> batch;
      const std::size_t specs = 1 + rng->UniformIndex(3);
      std::vector<std::vector<double>> pending(mirror->size());
      for (std::size_t i = 0; i < specs; ++i) {
        SeriesExtension ext;
        ext.series = rng->UniformIndex(mirror->size());
        ext.points = testing::SmoothSeries(rng, 1 + rng->UniformIndex(4));
        pending[ext.series].insert(pending[ext.series].end(),
                                   ext.points.begin(), ext.points.end());
        batch.push_back(std::move(ext));
      }
      Result<ExtendResult> next = ExtendSeries(*base, batch);
      ASSERT_TRUE(next.ok()) << next.status();
      *base = std::move(next->base);
      for (std::size_t s = 0; s < pending.size(); ++s) {
        if (pending[s].empty()) continue;
        std::vector<double> values = (*mirror)[s].values();
        values.insert(values.end(), pending[s].begin(), pending[s].end());
        TimeSeries grown((*mirror)[s].name(), std::move(values),
                         (*mirror)[s].label());
        Dataset updated(mirror->name());
        for (std::size_t t = 0; t < mirror->size(); ++t) {
          updated.Add(t == s ? grown : (*mirror)[t]);
        }
        *mirror = std::move(updated);
      }
    } else {
      // Single-series point-append, the tick-by-tick streaming shape.
      const std::size_t series = rng->UniformIndex(mirror->size());
      const std::vector<double> points =
          testing::SmoothSeries(rng, 1 + rng->UniformIndex(4));
      Result<ExtendResult> next = ExtendSeries(*base, series, points);
      ASSERT_TRUE(next.ok()) << next.status();
      *base = std::move(next->base);
      std::vector<double> values = (*mirror)[series].values();
      values.insert(values.end(), points.begin(), points.end());
      TimeSeries grown((*mirror)[series].name(), std::move(values),
                       (*mirror)[series].label());
      Dataset updated(mirror->name());
      for (std::size_t t = 0; t < mirror->size(); ++t) {
        updated.Add(t == series ? grown : (*mirror)[t]);
      }
      *mirror = std::move(updated);
    }
  }
}

class IncrementalDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalDiffTest, MaintainedBaseAgreesWithRebuildAndBruteForce) {
  const std::uint64_t seed = GetParam();
  for (int schedule = 0; schedule < 25; ++schedule) {
    Rng rng(seed * 10'000 + static_cast<std::uint64_t>(schedule));
    const CentroidPolicy policy = static_cast<CentroidPolicy>(schedule % 3);
    const BaseBuildOptions opt = Options(policy);

    // Seed collection: a handful of short smooth series.
    Dataset mirror("diff");
    const std::size_t num = 3 + rng.UniformIndex(3);
    for (std::size_t s = 0; s < num; ++s) {
      mirror.Add(TimeSeries("s" + std::to_string(s),
                            testing::SmoothSeries(&rng,
                                                  8 + rng.UniformIndex(5))));
    }
    Result<OnexBase> built =
        OnexBase::Build(std::make_shared<const Dataset>(mirror), opt);
    ASSERT_TRUE(built.ok()) << built.status();
    OnexBase base = std::move(built).value();

    RunSchedule(&rng, &base, &mirror);
    if (::testing::Test::HasFatalFailure()) return;

    // Oracle 1: from-scratch rebuild over the final dataset. Grouping can
    // differ (insertion order matters under the leader rule), but both must
    // cover the identical subsequence space, and the maintained dataset
    // must be value-identical to the mirror.
    auto final_ds = std::make_shared<const Dataset>(mirror);
    Result<OnexBase> rebuilt_r = OnexBase::Build(final_ds, opt);
    ASSERT_TRUE(rebuilt_r.ok()) << rebuilt_r.status();
    const OnexBase& rebuilt = *rebuilt_r;

    ASSERT_EQ(base.dataset().size(), mirror.size());
    for (std::size_t s = 0; s < mirror.size(); ++s) {
      ASSERT_EQ(base.dataset()[s].length(), mirror[s].length());
      for (std::size_t i = 0; i < mirror[s].length(); ++i) {
        ASSERT_DOUBLE_EQ(base.dataset()[s][i], mirror[s][i]);
      }
    }
    const std::size_t expected_members = mirror.CountSubsequences(
        kMinLen, mirror.MaxLength(), kLenStep, /*stride=*/1);
    EXPECT_EQ(base.TotalMembers(), expected_members);
    EXPECT_EQ(rebuilt.TotalMembers(), expected_members);
    EXPECT_EQ(base.stats().num_length_classes,
              rebuilt.stats().num_length_classes);

    // Oracle 2: exact brute-force scan. Both the maintained and the rebuilt
    // base must answer within the approximation bound. The provable bound
    // is ans <= opt + 2 * max member radius (== opt + ST when the ST/2
    // invariant holds; wider exactly by the drift the maintenance reports).
    const double maintained_bound =
        std::max(kSt, 2.0 * MaxMemberRadius(base)) + 1e-9;
    const double rebuilt_bound =
        std::max(kSt, 2.0 * MaxMemberRadius(rebuilt)) + 1e-9;
    QueryProcessor maintained_qp(&base);
    QueryProcessor rebuilt_qp(&rebuilt);
    QueryOptions qopt;
    qopt.exhaustive = true;  // the mode that carries the paper's guarantee

    for (int q = 0; q < 2; ++q) {
      const std::size_t series = rng.UniformIndex(mirror.size());
      const std::size_t qlen =
          std::min<std::size_t>(kMinLen + 2 * rng.UniformIndex(3),
                                mirror[series].length());
      const std::size_t start =
          rng.UniformIndex(mirror[series].length() - qlen + 1);
      std::vector<double> query(
          mirror[series].Slice(start, qlen).begin(),
          mirror[series].Slice(start, qlen).end());
      for (double& v : query) v += rng.Gaussian(0.0, 0.05);

      ScanScope scope;
      scope.min_length = kMinLen;
      scope.max_length = mirror.MaxLength();
      scope.length_step = kLenStep;
      Result<ScanMatch> exact =
          BruteForceBestMatch(mirror, query, ScanDistance::kDtw, scope);
      ASSERT_TRUE(exact.ok()) << exact.status();

      Result<BestMatch> maintained = maintained_qp.BestMatchQuery(query, qopt);
      ASSERT_TRUE(maintained.ok()) << maintained.status();
      EXPECT_LE(maintained->normalized_dtw, exact->normalized + maintained_bound)
          << "policy=" << CentroidPolicyToString(policy)
          << " schedule=" << schedule << " q=" << q;

      Result<BestMatch> fresh = rebuilt_qp.BestMatchQuery(query, qopt);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      EXPECT_LE(fresh->normalized_dtw, exact->normalized + rebuilt_bound);

      // kNN via the maintained base: ascending, valid refs, top-1 equals
      // the best-match answer.
      Result<std::vector<BestMatch>> knn =
          maintained_qp.KnnQuery(query, 3, qopt);
      ASSERT_TRUE(knn.ok()) << knn.status();
      ASSERT_FALSE(knn->empty());
      EXPECT_NEAR(knn->front().normalized_dtw, maintained->normalized_dtw,
                  1e-9);
      double prev = 0.0;
      for (const BestMatch& m : *knn) {
        EXPECT_GE(m.normalized_dtw, prev - 1e-12);
        prev = m.normalized_dtw;
        ASSERT_TRUE(mirror
                        .CheckRange(m.ref.series, m.ref.start, m.ref.length)
                        .ok());
      }
    }
  }
}

/// A maintained base and a rebuild answer identically after a schedule that
/// ends in a full regroup: RegroupLengthClasses over every class re-runs
/// the exact build pipeline, so group counts per class must match the
/// from-scratch build bit for bit.
TEST_P(IncrementalDiffTest, FullRegroupConvergesToFromScratchBuild) {
  const std::uint64_t seed = GetParam();
  for (int schedule = 0; schedule < 5; ++schedule) {
    Rng rng(seed * 77'000 + static_cast<std::uint64_t>(schedule));
    const CentroidPolicy policy = static_cast<CentroidPolicy>(schedule % 3);
    const BaseBuildOptions opt = Options(policy);

    Dataset mirror("regroup");
    for (std::size_t s = 0; s < 4; ++s) {
      mirror.Add(TimeSeries("s" + std::to_string(s),
                            testing::SmoothSeries(&rng, 10)));
    }
    Result<OnexBase> built =
        OnexBase::Build(std::make_shared<const Dataset>(mirror), opt);
    ASSERT_TRUE(built.ok());
    OnexBase base = std::move(built).value();
    RunSchedule(&rng, &base, &mirror);
    if (::testing::Test::HasFatalFailure()) return;

    std::vector<std::size_t> all_lengths;
    for (const LengthClass& cls : base.length_classes()) {
      all_lengths.push_back(cls.length);
    }
    Result<OnexBase> regrouped_r = RegroupLengthClasses(base, all_lengths);
    ASSERT_TRUE(regrouped_r.ok()) << regrouped_r.status();
    const OnexBase& regrouped = *regrouped_r;

    Result<OnexBase> rebuilt =
        OnexBase::Build(std::make_shared<const Dataset>(mirror), opt);
    ASSERT_TRUE(rebuilt.ok());

    EXPECT_EQ(regrouped.TotalMembers(), rebuilt->TotalMembers());
    EXPECT_EQ(regrouped.TotalGroups(), rebuilt->TotalGroups());
    ASSERT_EQ(regrouped.length_classes().size(),
              rebuilt->length_classes().size());
    for (std::size_t c = 0; c < regrouped.length_classes().size(); ++c) {
      const LengthClass& a = regrouped.length_classes()[c];
      const LengthClass& b = rebuilt->length_classes()[c];
      EXPECT_EQ(a.length, b.length);
      EXPECT_EQ(a.groups.size(), b.groups.size());
      EXPECT_EQ(a.total_members, b.total_members);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDiffTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace onex
