/// Protocol fuzz/property layer: seeded-random mutated, truncated and
/// oversized frames through the parser and executor. The contract under
/// test — every input yields a clean error Status or a well-formed
/// response; never a crash, a hang, or an allocation proportional to a
/// number someone typed into a frame. Run under ASan in CI.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/engine/wal.h"
#include "onex/json/json.h"
#include "onex/net/protocol.h"
#include "onex/net/replication.h"

namespace onex::net {
namespace {

/// Valid session lines the mutator perturbs. File-touching verbs (LOAD,
/// SAVEBASE, LOADBASE) are deliberately absent so mutated frames cannot
/// write to the filesystem.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> corpus = {
      "PING",
      "LIST",
      "DATASETS",
      "USE s",
      "BUDGET bytes=100000",
      "TIER s",
      "TIER s pin=1",
      "TIER s pin=0 demote=1",
      "TIER dataset=s demote=1",
      "GEN s sine num=4 len=12 seed=7",
      "GEN w walk num=3 len=10",
      "PREPARE s st=0.2 maxlen=8",
      "PREPARE dataset=s st=0.25 minlen=4 maxlen=8 policy=running-mean",
      "APPEND s series=x v=0.1,0.2,0.3,0.4,0.5,0.6",
      "EXTEND s series=0 points=0.2,0.4,0.3",
      "EXTEND dataset=s series=x points=0.1,0.9",
      "DRIFT s",
      "DRIFT s threshold=0.25",
      "STATS s",
      "CATALOG s points=6",
      "OVERVIEW s top=5",
      "MATCH s q=0:2:8 exhaustive=1",
      "MATCH dataset=s q=1:0:6",
      "MATCH s q=0:2:8 deadline_ms=50",
      "KNN s q=0:0:8 k=3",
      "KNN s q=0:0:8 k=2 deadline_ms=0",
      "BATCH s q=0:0:6;1:2:8 k=2",
      "BATCH s q=0:0:6;1:2:8 k=2 deadline_ms=1000",
      "SEASONAL s series=0 length=8",
      "THRESHOLD s pairs=50",
      "ANOMALY s top=4 minpts=2",
      "ANOMALY s length=8 eps=0.5 deadline_ms=50",
      "ANOMALY dataset=s top=3",
      "CHANGEPOINT s series=0 hazard=0.05 maxrun=32",
      "CHANGEPOINT s series=0 last=8 probs=1 threshold=0.4",
      "MOTIF s top=3 discords=2",
      "MOTIF dataset=s length=8",
      "FORECAST s series=0 horizon=4 k=2",
      "FORECAST s series=1 horizon=3 method=seasonal period=6",
      // Safe on a non-durable engine: FailedPrecondition, never a file
      // write. PERSIST dir=... lives only in the durability fuzz below,
      // where the engine is already rooted and re-rooting is rejected.
      "CHECKPOINT s",
      "DROP w",
      "QUIT",
  };
  return corpus;
}

std::string MutateLine(Rng* rng, std::string line) {
  const int kind = static_cast<int>(rng->UniformIndex(7));
  switch (kind) {
    case 0: {  // truncate
      if (!line.empty()) line.resize(rng->UniformIndex(line.size() + 1));
      break;
    }
    case 1: {  // flip a byte to anything, including NUL and non-ASCII
      if (!line.empty()) {
        line[rng->UniformIndex(line.size())] =
            static_cast<char>(rng->UniformInt(0, 255));
      }
      break;
    }
    case 2: {  // insert random bytes
      const std::size_t n = rng->UniformIndex(8) + 1;
      for (std::size_t i = 0; i < n; ++i) {
        line.insert(line.begin() + static_cast<std::ptrdiff_t>(
                                       rng->UniformIndex(line.size() + 1)),
                    static_cast<char>(rng->UniformInt(0, 255)));
      }
      break;
    }
    case 3: {  // duplicate the tail (oversized / repeated-token frames)
      line += ' ';
      line += line.substr(rng->UniformIndex(line.size()));
      break;
    }
    case 4: {  // inject an absurd number into the first k=v option
      const std::size_t eq = line.find('=');
      if (eq != std::string::npos) {
        static const char* kNumbers[] = {
            "99999999999999999999", "-9223372036854775808", "1e308",
            "9223372036854775807",  "0x7fffffff",           "nan",
            "inf",                  "-1",                   "1e-308"};
        line = line.substr(0, eq + 1) +
               kNumbers[rng->UniformIndex(std::size(kNumbers))];
      }
      break;
    }
    case 5: {  // swap delimiters: spaces <-> ':' <-> '=' <-> ';'
      static const char kDelims[] = {' ', ':', '=', ';', ',', '\t'};
      for (char& c : line) {
        if ((c == ' ' || c == ':' || c == '=' || c == ';' || c == ',') &&
            rng->Bernoulli(0.3)) {
          c = kDelims[rng->UniformIndex(std::size(kDelims))];
        }
      }
      break;
    }
    default: {  // splice two corpus lines
      const std::string& other =
          Corpus()[rng->UniformIndex(Corpus().size())];
      line = line.substr(0, rng->UniformIndex(line.size() + 1)) +
             other.substr(rng->UniformIndex(other.size() + 1));
      break;
    }
  }
  return line;
}

/// Every response must be a single-line JSON object with an "ok" bool.
void CheckResponse(const json::Value& v, const std::string& input) {
  ASSERT_TRUE(v.is_object()) << "non-object response for: " << input;
  ASSERT_TRUE(v["ok"].is_bool()) << "missing ok field for: " << input;
  const std::string wire = FormatResponse(v);
  EXPECT_EQ(std::count(wire.begin(), wire.end(), '\n'), 1)
      << "multi-line response for: " << input;
}

TEST(ProtocolFuzzTest, RandomByteLinesNeverCrashParser) {
  Rng rng(0xF00D);
  for (int iter = 0; iter < 6000; ++iter) {
    const std::size_t len = rng.UniformIndex(256);
    std::string line;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    const Result<Command> cmd = ParseCommandLine(line);
    if (cmd.ok()) {
      EXPECT_FALSE(cmd->verb.empty());
    } else {
      EXPECT_FALSE(cmd.status().message().empty());
    }
  }
}

TEST(ProtocolFuzzTest, OversizedFramesParseInBoundedTimeAndMemory) {
  Rng rng(0xBEEF);
  // A megabyte of one token, a megabyte of tokens, a megabyte of '='.
  std::vector<std::string> frames;
  frames.push_back(std::string(1 << 20, 'A'));
  {
    std::string many;
    for (int i = 0; i < 150000; ++i) many += "x ";
    frames.push_back(std::move(many));
  }
  frames.push_back("MATCH s q=" + std::string(1 << 20, ':'));
  frames.push_back(std::string(1 << 20, '='));
  frames.push_back("KNN " + std::string(1 << 18, ' ') + " q=0:0:8");
  for (const std::string& frame : frames) {
    const Result<Command> cmd = ParseCommandLine(frame);
    (void)cmd;  // either outcome is fine; the property is no crash/hang
  }
}

TEST(ProtocolFuzzTest, MutatedSessionFramesNeverCrashExecutor) {
  Engine engine;
  Session session;
  // Seed state so dataset-touching mutations exercise real code paths.
  auto bootstrap = [&] {
    for (const char* line :
         {"GEN s sine num=4 len=12 seed=7", "PREPARE s st=0.2 maxlen=8"}) {
      const Result<Command> cmd = ParseCommandLine(line);
      ASSERT_TRUE(cmd.ok());
      const json::Value v = ExecuteCommand(&engine, &session, *cmd);
      ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
    }
  };
  bootstrap();

  Rng rng(0xC0FFEE);
  constexpr int kIterations = 10000;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string line = Corpus()[rng.UniformIndex(Corpus().size())];
    const std::size_t rounds = 1 + rng.UniformIndex(3);
    for (std::size_t r = 0; r < rounds; ++r) line = MutateLine(&rng, line);

    const Result<Command> cmd = ParseCommandLine(line);
    if (!cmd.ok()) continue;
    const json::Value v = ExecuteCommand(&engine, &session, *cmd);
    CheckResponse(v, line);

    // Mutated GEN/DROP lines accumulate or destroy datasets; periodically
    // reset so the corpus dataset exists and memory stays bounded.
    if (iter % 500 == 499) {
      for (const std::string& name : engine.ListDatasets()) {
        ASSERT_TRUE(engine.DropDataset(name).ok());
      }
      session.dataset.clear();
      bootstrap();
    }
  }

  // The session survived 10k hostile frames: it must still answer cleanly.
  const json::Value ping =
      ExecuteCommand(&engine, &session, *ParseCommandLine("PING"));
  EXPECT_TRUE(ping["ok"].as_bool());
  const json::Value match = ExecuteCommand(
      &engine, &session, *ParseCommandLine("MATCH s q=0:2:8"));
  EXPECT_TRUE(match["ok"].as_bool()) << match.Dump();
}

TEST(ProtocolFuzzTest, NonFiniteBinaryPayloadsAreRejectedNotInstalled) {
  Engine engine;
  Session session;
  for (const char* line :
       {"GEN s sine num=3 len=12 seed=5", "PREPARE s st=0.2 maxlen=8"}) {
    const json::Value v =
        ExecuteCommand(&engine, &session, *ParseCommandLine(line));
    ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  }

  // A binary client ships bulk points as a raw float64 payload, skipping
  // the text tokenizer entirely — so the finite-number check must live in
  // the executor, not the parser. Poison one slot per frame with a
  // NaN/Inf and demand a clean InvalidArgument every time.
  const double kPoison[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity()};
  Rng rng(0xFADE);
  for (int iter = 0; iter < 500; ++iter) {
    Command cmd;
    cmd.args.push_back("s");
    if (rng.Bernoulli(0.5)) {
      cmd.verb = "EXTEND";
      cmd.options["series"] = "0";
    } else {
      cmd.verb = "APPEND";
      cmd.options["series"] = "fuzz_" + std::to_string(iter);
    }
    cmd.payload.assign(1 + rng.UniformIndex(16), 0.25);
    cmd.payload[rng.UniformIndex(cmd.payload.size())] =
        kPoison[rng.UniformIndex(std::size(kPoison))];
    const json::Value v = ExecuteCommand(&engine, &session, cmd);
    CheckResponse(v, cmd.verb + " <binary payload>");
    EXPECT_FALSE(v["ok"].as_bool()) << v.Dump();
    EXPECT_EQ(v["code"].as_string(), "InvalidArgument") << v.Dump();
  }

  // Nothing leaked: still 3 series of 12 points, no fuzz_* series.
  const json::Value stats =
      ExecuteCommand(&engine, &session, *ParseCommandLine("STATS s"));
  ASSERT_TRUE(stats["ok"].as_bool()) << stats.Dump();
  EXPECT_EQ(stats["series"].as_number(), 3.0);
  EXPECT_EQ(stats["total_points"].as_number(), 36.0);
}

TEST(ProtocolFuzzTest, DurabilityFramesNeverCrashOrEscapeTheDataDir) {
  const std::string dir = ::testing::TempDir() + "/onex_fuzz_durability";
  std::filesystem::remove_all(dir);
  {
    Engine engine;
    Session session;
    DurabilityOptions durability;
    durability.dir = dir;
    durability.fsync = false;
    ASSERT_TRUE(engine.EnableDurability(durability).ok());
    for (const char* line :
         {"GEN s sine num=4 len=12 seed=7", "PREPARE s st=0.2 maxlen=8"}) {
      const json::Value v =
          ExecuteCommand(&engine, &session, *ParseCommandLine(line));
      ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
    }

    const std::vector<std::string> durability_corpus = {
        "PERSIST",
        "PERSIST dir=/definitely/not/used because=durability-is-rooted",
        "PERSIST dir=elsewhere every=10 fsync=0",
        "PERSIST every=999999999999999",
        "CHECKPOINT s",
        "CHECKPOINT",
        "CHECKPOINT dataset=s",
        "CHECKPOINT missing",
        "STATS s",
        "DATASETS",
        "EXTEND s series=0 points=0.2,0.4",
        // The mapped tier's wire surface: on this durable engine demote=1
        // can genuinely swap the base for its arena and back.
        "TIER s",
        "TIER s demote=1",
        "TIER s pin=1",
        "TIER s pin=0",
    };
    Rng rng(0xD00D);
    for (int iter = 0; iter < 3000; ++iter) {
      std::string line =
          durability_corpus[rng.UniformIndex(durability_corpus.size())];
      const std::size_t rounds = rng.UniformIndex(3);
      for (std::size_t r = 0; r < rounds; ++r) line = MutateLine(&rng, line);
      const Result<Command> cmd = ParseCommandLine(line);
      if (!cmd.ok()) continue;
      const json::Value v = ExecuteCommand(&engine, &session, *cmd);
      CheckResponse(v, line);
      // No hostile frame may re-root the journal.
      ASSERT_EQ(engine.registry().data_dir(), dir) << line;
    }

    // The cap: a background-checkpoint threshold past the limit is an
    // InvalidArgument even though durability is already on.
    const json::Value capped = ExecuteCommand(
        &engine, &session,
        *ParseCommandLine("PERSIST dir=x every=999999999999999"));
    EXPECT_FALSE(capped["ok"].as_bool());
    EXPECT_EQ(capped["code"].as_string(), "InvalidArgument");
    // A straight CHECKPOINT still works after the bombardment.
    const json::Value ckpt =
        ExecuteCommand(&engine, &session, *ParseCommandLine("CHECKPOINT s"));
    EXPECT_TRUE(ckpt["ok"].as_bool()) << ckpt.Dump();
  }
  // Whatever the hostile frames did, the journal they left is recoverable.
  Engine recovered;
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = false;
  ASSERT_TRUE(recovered.EnableDurability(durability).ok());
  EXPECT_TRUE(recovered.Get("s").ok());
  std::filesystem::remove_all(dir);
}

TEST(ProtocolFuzzTest, SizeDrivingOptionsAreCapped) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN s sine num=4 len=12"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine, &session,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=8"))["ok"]
          .as_bool());
  // Each of these would, uncapped, command an allocation proportional to
  // the number in the frame.
  std::string flood = "BATCH s k=100000 q=0:0:8";
  for (int i = 0; i < 2000; ++i) flood += ";0:0:8";
  // 100001 points: one past the EXTEND cap.
  std::string extend_flood = "EXTEND s series=0 points=0";
  for (int i = 0; i < 100000; ++i) extend_flood += ",0";
  for (const std::string& line : {
           std::string("GEN huge walk num=1000000000 len=1000000000"),
           std::string("GEN huge walk num=2000000 len=2000000"),
           std::string("CATALOG s points=999999999"),
           std::string("KNN s q=0:0:8 k=999999999"),
           std::string("BATCH s q=0:0:8 k=999999999"),
           std::string("THRESHOLD s pairs=999999999"),
           std::string("ANOMALY s top=999999999"),
           std::string("ANOMALY s minpts=999999999"),
           std::string("CHANGEPOINT s series=0 maxrun=999999999"),
           std::string("MOTIF s top=999999999"),
           std::string("MOTIF s discords=999999999"),
           std::string("FORECAST s series=0 horizon=999999999"),
           std::string("FORECAST s series=0 k=999999999"),
           flood,  // spec-count flood: 2001 queries x max k
           extend_flood,
       }) {
    const json::Value v =
        ExecuteCommand(&engine, &session, *ParseCommandLine(line));
    EXPECT_FALSE(v["ok"].as_bool()) << line;
    EXPECT_EQ(v["code"].as_string(), "InvalidArgument") << line;
  }
}

TEST(ProtocolFuzzTest, ShippedWalFramesNeverInstallCorruptRecords) {
  const std::string dir_p = ::testing::TempDir() + "/onex_fuzz_repl_primary";
  const std::string dir_r = ::testing::TempDir() + "/onex_fuzz_repl_replica";
  std::filesystem::remove_all(dir_p);
  std::filesystem::remove_all(dir_r);

  // A primary's genuine history, captured off its WAL sink: the only bytes
  // a replica may ever install, no matter what arrives on the wire.
  Engine primary;
  Session psession;
  DurabilityOptions popt;
  popt.dir = dir_p;
  popt.fsync = false;
  ASSERT_TRUE(primary.EnableDurability(popt).ok());
  std::vector<std::pair<WalRecord, std::string>> genuine;  // record, line
  primary.registry().SetWalSink([&genuine](const std::string&,
                                           const WalRecord& record,
                                           const std::string& encoded) {
    genuine.emplace_back(record, encoded);
  });
  for (const char* line :
       {"GEN s sine num=4 len=24 seed=9", "PREPARE s st=0.2 maxlen=12",
        "APPEND s series=x v=0.1,0.3,0.5,0.4,0.2,0.1",
        "EXTEND s series=0 points=0.2,0.6"}) {
    const json::Value v =
        ExecuteCommand(&primary, &psession, *ParseCommandLine(line));
    ASSERT_TRUE(v["ok"].as_bool()) << line << ": " << v.Dump();
  }
  primary.registry().SetWalSink(nullptr);
  ASSERT_EQ(genuine.size(), 4u);

  // The replica mirrors the history up to seq 2; records 3 and 4 are the
  // held-out tail the hostile frames pretend to ship.
  Engine replica;
  Session rsession;
  DurabilityOptions ropt;
  ropt.dir = dir_r;
  ropt.fsync = false;
  ASSERT_TRUE(replica.EnableDurability(ropt).ok());
  ASSERT_TRUE(replica.registry().ApplyReplicated("s", genuine[0].first).ok());
  ASSERT_TRUE(replica.registry().ApplyReplicated("s", genuine[1].first).ok());
  const std::string l1 = genuine[0].second;
  const std::string l3 = genuine[2].second;
  const std::string l4 = genuine[3].second;
  const std::string wal_path =
      dir_r + "/" + SlotDirName("s") + "/wal";
  const std::string base = [&] {
    std::ifstream in(wal_path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  ASSERT_FALSE(base.empty());

  // Executes only REPLAPPLY frames: a mutation that splices the line into a
  // different verb entirely (GEN, EXTEND, ...) is ordinary traffic, covered
  // by the session fuzz above — here it would just confuse the
  // journal-prefix invariant with legitimate local writes.
  auto run = [&](const std::string& command_line, const std::string& blob) {
    const Result<Command> cmd = ParseCommandLine(command_line);
    if (!cmd.ok() || cmd->verb != "REPLAPPLY") return json::Value();
    Command with_blob = *cmd;
    with_blob.blob = blob;
    return ExecuteCommand(&replica, &rsession, with_blob);
  };
  auto head = [](const std::string& dataset, std::uint64_t first,
                 std::size_t count, std::uint64_t crc) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "REPLAPPLY dataset=%s first=%llu count=%zu crc=%016llx",
                  dataset.c_str(), static_cast<unsigned long long>(first),
                  count, static_cast<unsigned long long>(crc));
    return std::string(buf);
  };
  // THE invariant: whatever the frame said, the replica's journal is still
  // a prefix of the primary's genuine journal, and no foreign slot exists.
  auto check_installed_only_genuine = [&](const std::string& input) {
    std::ifstream in(wal_path, std::ios::binary);
    const std::string wal(std::istreambuf_iterator<char>(in), {});
    ASSERT_TRUE(wal == base || wal == base + l3 || wal == base + l3 + l4)
        << "non-genuine bytes installed by: " << input;
    ASSERT_EQ(replica.ListDatasets(), std::vector<std::string>{"s"}) << input;
  };

  // Crafted batches with honest checksums: the crc is right, the *shape* is
  // the attack — reordered, duplicated, torn, miscounted, gapped, stale and
  // misaddressed deliveries.
  const struct {
    const char* what;
    std::string header;
    std::string blob;
    bool may_apply;  ///< Duplicate deliveries are OK-and-skipped, not errors.
  } crafted[] = {
      {"reordered", head("s", 3, 2, Fnv1a64(l4 + l3)), l4 + l3, false},
      {"duplicated-line", head("s", 3, 2, Fnv1a64(l3 + l3)), l3 + l3, false},
      {"torn-line", head("s", 3, 1, Fnv1a64(l3.substr(0, l3.size() / 2))),
       l3.substr(0, l3.size() / 2), false},
      {"count-over", head("s", 3, 2, Fnv1a64(l3)), l3, false},
      {"count-under", head("s", 3, 1, Fnv1a64(l3 + l4)), l3 + l4, false},
      {"first-mismatch", head("s", 4, 1, Fnv1a64(l3)), l3, false},
      {"seq-gap", head("s", 4, 1, Fnv1a64(l4)), l4, false},
      {"wrong-dataset", head("zzz", 3, 1, Fnv1a64(l3)), l3, false},
      {"bad-crc", head("s", 3, 1, Fnv1a64(l3) ^ 1), l3, false},
      {"stale-duplicate", head("s", 1, 1, Fnv1a64(l1)), l1, true},
  };
  for (const auto& c : crafted) {
    const json::Value v = run(c.header, c.blob);
    CheckResponse(v, c.what);
    if (!c.may_apply) {
      EXPECT_FALSE(v["ok"].as_bool()) << c.what << ": " << v.Dump();
    }
    check_installed_only_genuine(c.what);
    // Nothing above ships seq 3, so the floor must still be exactly 2.
    const Result<SlotDurability> d = replica.registry().Durability("s");
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->last_seq, 2u) << c.what;
  }

  // Random mutation storm over the genuine seq-3 frame. A mutation that
  // happens to leave the frame semantically intact (e.g. an inserted space
  // between tokens) may legitimately install the genuine record — the
  // invariant is never-install-corrupt, not never-install.
  const std::string valid_frame = EncodeReplApplyText("s", 3, {l3});
  Rng rng(0x5EED);
  for (int iter = 0; iter < 2500; ++iter) {
    std::string frame = valid_frame;
    const std::size_t rounds = 1 + rng.UniformIndex(2);
    for (std::size_t r = 0; r < rounds; ++r) frame = MutateLine(&rng, frame);
    if (frame == valid_frame) continue;
    const std::size_t newline = frame.find('\n');
    const std::string command_line =
        newline == std::string::npos ? frame : frame.substr(0, newline);
    const std::string blob =
        newline == std::string::npos ? std::string() : frame.substr(newline + 1);
    const json::Value v = run(command_line, blob);
    if (!v.is_object()) continue;  // parse error: nothing executed
    CheckResponse(v, command_line);
    check_installed_only_genuine(command_line);
  }

  // After the bombardment the genuine tail still applies cleanly and the
  // journal it leaves recovers.
  for (std::size_t i = 2; i < genuine.size(); ++i) {
    const Status s = replica.registry().ApplyReplicated("s", genuine[i].first);
    ASSERT_TRUE(s.ok()) << "seq " << genuine[i].first.seq << ": " << s;
  }
  const json::Value match =
      ExecuteCommand(&replica, &rsession, *ParseCommandLine("MATCH s q=0:2:8"));
  EXPECT_TRUE(match["ok"].as_bool()) << match.Dump();
  Engine recovered;
  ASSERT_TRUE(recovered.EnableDurability(ropt).ok());
  EXPECT_TRUE(recovered.Get("s").ok());
  std::filesystem::remove_all(dir_p);
  std::filesystem::remove_all(dir_r);
}

/// Hostile ONEXARENA files through the LOADBASE verb. The contract: a
/// declared section length or count NEVER drives an allocation (inflated
/// sizes are rejected by bounds checks before any byte is trusted, even
/// when the attacker keeps the whole-file checksum honest), every corrupt
/// file yields a clean error response, and arena mappings never outlive
/// their slot — a demoted dataset can be dropped and its checkpoint file
/// destroyed with nothing dangling (ASan proves the negative).
TEST(ProtocolFuzzTest, HostileArenaFilesThroughLoadbaseNeverCrash) {
  const std::string dir = ::testing::TempDir() + "/onex_fuzz_arena";
  std::filesystem::remove_all(dir);
  Engine engine;
  Session session;
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = false;
  ASSERT_TRUE(engine.EnableDurability(durability).ok());
  for (const char* line :
       {"GEN s sine num=4 len=16 seed=3", "PREPARE s st=0.2 maxlen=8",
        "CHECKPOINT s"}) {
    const json::Value v =
        ExecuteCommand(&engine, &session, *ParseCommandLine(line));
    ASSERT_TRUE(v["ok"].as_bool()) << line << ": " << v.Dump();
  }
  // The checkpoint the engine just wrote is a genuine arena blob.
  std::string genuine;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/" + SlotDirName("s"))) {
    if (entry.path().filename().string().rfind("ckpt-", 0) != 0) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    genuine.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(genuine.size(), 64u);

  const std::string hostile_path = dir + "/hostile.arena";
  auto loadbase = [&](const std::string& bytes) {
    {
      std::ofstream out(hostile_path, std::ios::binary | std::ios::trunc);
      out << bytes;
    }
    const json::Value v = ExecuteCommand(
        &engine, &session,
        *ParseCommandLine("LOADBASE h " + hostile_path));
    CheckResponse(v, "LOADBASE (" + std::to_string(bytes.size()) + " bytes)");
    if (v["ok"].as_bool()) {
      EXPECT_TRUE(engine.DropDataset("h").ok());  // keep the name reusable
    }
    return v;
  };
  // Sanity: the untouched arena loads and answers.
  {
    std::ofstream out(hostile_path, std::ios::binary | std::ios::trunc);
    out << genuine;
  }
  const json::Value loaded = ExecuteCommand(
      &engine, &session, *ParseCommandLine("LOADBASE h " + hostile_path));
  ASSERT_TRUE(loaded["ok"].as_bool()) << loaded.Dump();
  const json::Value match = ExecuteCommand(
      &engine, &session, *ParseCommandLine("MATCH h q=0:2:8"));
  EXPECT_TRUE(match["ok"].as_bool()) << match.Dump();
  ASSERT_TRUE(engine.DropDataset("h").ok());

  auto put32 = [](std::string* b, std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      (*b)[at + static_cast<std::size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xff);
    }
  };
  auto put64 = [](std::string* b, std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      (*b)[at + static_cast<std::size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xff);
    }
  };
  // Keeping the whole-file FNV honest lets a patch reach the structural
  // validators instead of dying at the checksum — the adversarial case.
  auto refnv = [&put64](std::string* b) {
    put64(b, 32, Fnv1a64(std::string_view(*b).substr(64)));
  };

  // Crafted attacks on the framing itself. Each must be a structured error
  // (under ASan, an allocation driven by the planted number would abort).
  {
    std::string b = genuine;  // file_size claims 2^62 bytes
    put64(&b, 16, std::uint64_t{1} << 62);
    EXPECT_FALSE(loadbase(b)["ok"].as_bool()) << "huge file_size";
  }
  {
    std::string b = genuine;  // section table of 4 billion entries
    put32(&b, 24, 0xffffffffu);
    refnv(&b);
    EXPECT_FALSE(loadbase(b)["ok"].as_bool()) << "huge section_count";
  }
  {
    std::string b = genuine;  // first section claims 2^60 bytes
    put64(&b, 64 + 16, std::uint64_t{1} << 60);
    refnv(&b);
    EXPECT_FALSE(loadbase(b)["ok"].as_bool()) << "huge section size";
  }
  {
    std::string b = genuine;  // offset + size wraps past 2^64
    put64(&b, 64 + 8, 0xffffffffffffffc0ull);
    put64(&b, 64 + 16, std::uint64_t{0x80});
    refnv(&b);
    EXPECT_FALSE(loadbase(b)["ok"].as_bool()) << "offset overflow";
  }
  {
    std::string b = genuine;  // duplicate section identity
    b.replace(64 + 32, 8, b, 64, 8);  // desc1 kind/index := desc0's
    refnv(&b);
    EXPECT_FALSE(loadbase(b)["ok"].as_bool()) << "duplicate section";
  }

  // Random storm: flips (half with an honest re-checksum so they pierce the
  // FNV layer), truncations, and garbage tails.
  Rng rng(0xA12E7A);
  for (int iter = 0; iter < 300; ++iter) {
    std::string b = genuine;
    switch (rng.UniformIndex(3)) {
      case 0: {
        const std::size_t flips = 1 + rng.UniformIndex(3);
        for (std::size_t f = 0; f < flips; ++f) {
          b[rng.UniformIndex(b.size())] =
              static_cast<char>(rng.UniformInt(0, 255));
        }
        if (rng.Bernoulli(0.5)) refnv(&b);
        break;
      }
      case 1:
        b.resize(rng.UniformIndex(b.size()));
        break;
      default:
        b += std::string(1 + rng.UniformIndex(200),
                         static_cast<char>(rng.UniformInt(0, 255)));
        break;
    }
    loadbase(b);  // any well-formed outcome; the property is no crash/OOM
  }

  // Mapping lifetime over the wire: demote s onto its arena, drop it, and
  // destroy the file it was mapped from. Nothing may dangle.
  const json::Value demoted = ExecuteCommand(
      &engine, &session, *ParseCommandLine("TIER s demote=1"));
  ASSERT_TRUE(demoted["ok"].as_bool()) << demoted.Dump();
  EXPECT_EQ(demoted["tier"].as_string(), "mapped");
  const json::Value dropped =
      ExecuteCommand(&engine, &session, *ParseCommandLine("DROP s"));
  ASSERT_TRUE(dropped["ok"].as_bool()) << dropped.Dump();
  std::filesystem::remove_all(dir + "/" + SlotDirName("s"));
  const json::Value regen = ExecuteCommand(
      &engine, &session, *ParseCommandLine("GEN s sine num=2 len=10 seed=1"));
  EXPECT_TRUE(regen["ok"].as_bool()) << regen.Dump();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace onex::net
