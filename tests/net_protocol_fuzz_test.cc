/// Protocol fuzz/property layer: seeded-random mutated, truncated and
/// oversized frames through the parser and executor. The contract under
/// test — every input yields a clean error Status or a well-formed
/// response; never a crash, a hang, or an allocation proportional to a
/// number someone typed into a frame. Run under ASan in CI.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/json/json.h"
#include "onex/net/protocol.h"

namespace onex::net {
namespace {

/// Valid session lines the mutator perturbs. File-touching verbs (LOAD,
/// SAVEBASE, LOADBASE) are deliberately absent so mutated frames cannot
/// write to the filesystem.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> corpus = {
      "PING",
      "LIST",
      "DATASETS",
      "USE s",
      "BUDGET bytes=100000",
      "GEN s sine num=4 len=12 seed=7",
      "GEN w walk num=3 len=10",
      "PREPARE s st=0.2 maxlen=8",
      "PREPARE dataset=s st=0.25 minlen=4 maxlen=8 policy=running-mean",
      "APPEND s series=x v=0.1,0.2,0.3,0.4,0.5,0.6",
      "EXTEND s series=0 points=0.2,0.4,0.3",
      "EXTEND dataset=s series=x points=0.1,0.9",
      "DRIFT s",
      "DRIFT s threshold=0.25",
      "STATS s",
      "CATALOG s points=6",
      "OVERVIEW s top=5",
      "MATCH s q=0:2:8 exhaustive=1",
      "MATCH dataset=s q=1:0:6",
      "MATCH s q=0:2:8 deadline_ms=50",
      "KNN s q=0:0:8 k=3",
      "KNN s q=0:0:8 k=2 deadline_ms=0",
      "BATCH s q=0:0:6;1:2:8 k=2",
      "BATCH s q=0:0:6;1:2:8 k=2 deadline_ms=1000",
      "SEASONAL s series=0 length=8",
      "THRESHOLD s pairs=50",
      // Safe on a non-durable engine: FailedPrecondition, never a file
      // write. PERSIST dir=... lives only in the durability fuzz below,
      // where the engine is already rooted and re-rooting is rejected.
      "CHECKPOINT s",
      "DROP w",
      "QUIT",
  };
  return corpus;
}

std::string MutateLine(Rng* rng, std::string line) {
  const int kind = static_cast<int>(rng->UniformIndex(7));
  switch (kind) {
    case 0: {  // truncate
      if (!line.empty()) line.resize(rng->UniformIndex(line.size() + 1));
      break;
    }
    case 1: {  // flip a byte to anything, including NUL and non-ASCII
      if (!line.empty()) {
        line[rng->UniformIndex(line.size())] =
            static_cast<char>(rng->UniformInt(0, 255));
      }
      break;
    }
    case 2: {  // insert random bytes
      const std::size_t n = rng->UniformIndex(8) + 1;
      for (std::size_t i = 0; i < n; ++i) {
        line.insert(line.begin() + static_cast<std::ptrdiff_t>(
                                       rng->UniformIndex(line.size() + 1)),
                    static_cast<char>(rng->UniformInt(0, 255)));
      }
      break;
    }
    case 3: {  // duplicate the tail (oversized / repeated-token frames)
      line += ' ';
      line += line.substr(rng->UniformIndex(line.size()));
      break;
    }
    case 4: {  // inject an absurd number into the first k=v option
      const std::size_t eq = line.find('=');
      if (eq != std::string::npos) {
        static const char* kNumbers[] = {
            "99999999999999999999", "-9223372036854775808", "1e308",
            "9223372036854775807",  "0x7fffffff",           "nan",
            "inf",                  "-1",                   "1e-308"};
        line = line.substr(0, eq + 1) +
               kNumbers[rng->UniformIndex(std::size(kNumbers))];
      }
      break;
    }
    case 5: {  // swap delimiters: spaces <-> ':' <-> '=' <-> ';'
      static const char kDelims[] = {' ', ':', '=', ';', ',', '\t'};
      for (char& c : line) {
        if ((c == ' ' || c == ':' || c == '=' || c == ';' || c == ',') &&
            rng->Bernoulli(0.3)) {
          c = kDelims[rng->UniformIndex(std::size(kDelims))];
        }
      }
      break;
    }
    default: {  // splice two corpus lines
      const std::string& other =
          Corpus()[rng->UniformIndex(Corpus().size())];
      line = line.substr(0, rng->UniformIndex(line.size() + 1)) +
             other.substr(rng->UniformIndex(other.size() + 1));
      break;
    }
  }
  return line;
}

/// Every response must be a single-line JSON object with an "ok" bool.
void CheckResponse(const json::Value& v, const std::string& input) {
  ASSERT_TRUE(v.is_object()) << "non-object response for: " << input;
  ASSERT_TRUE(v["ok"].is_bool()) << "missing ok field for: " << input;
  const std::string wire = FormatResponse(v);
  EXPECT_EQ(std::count(wire.begin(), wire.end(), '\n'), 1)
      << "multi-line response for: " << input;
}

TEST(ProtocolFuzzTest, RandomByteLinesNeverCrashParser) {
  Rng rng(0xF00D);
  for (int iter = 0; iter < 6000; ++iter) {
    const std::size_t len = rng.UniformIndex(256);
    std::string line;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    const Result<Command> cmd = ParseCommandLine(line);
    if (cmd.ok()) {
      EXPECT_FALSE(cmd->verb.empty());
    } else {
      EXPECT_FALSE(cmd.status().message().empty());
    }
  }
}

TEST(ProtocolFuzzTest, OversizedFramesParseInBoundedTimeAndMemory) {
  Rng rng(0xBEEF);
  // A megabyte of one token, a megabyte of tokens, a megabyte of '='.
  std::vector<std::string> frames;
  frames.push_back(std::string(1 << 20, 'A'));
  {
    std::string many;
    for (int i = 0; i < 150000; ++i) many += "x ";
    frames.push_back(std::move(many));
  }
  frames.push_back("MATCH s q=" + std::string(1 << 20, ':'));
  frames.push_back(std::string(1 << 20, '='));
  frames.push_back("KNN " + std::string(1 << 18, ' ') + " q=0:0:8");
  for (const std::string& frame : frames) {
    const Result<Command> cmd = ParseCommandLine(frame);
    (void)cmd;  // either outcome is fine; the property is no crash/hang
  }
}

TEST(ProtocolFuzzTest, MutatedSessionFramesNeverCrashExecutor) {
  Engine engine;
  Session session;
  // Seed state so dataset-touching mutations exercise real code paths.
  auto bootstrap = [&] {
    for (const char* line :
         {"GEN s sine num=4 len=12 seed=7", "PREPARE s st=0.2 maxlen=8"}) {
      const Result<Command> cmd = ParseCommandLine(line);
      ASSERT_TRUE(cmd.ok());
      const json::Value v = ExecuteCommand(&engine, &session, *cmd);
      ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
    }
  };
  bootstrap();

  Rng rng(0xC0FFEE);
  constexpr int kIterations = 10000;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string line = Corpus()[rng.UniformIndex(Corpus().size())];
    const std::size_t rounds = 1 + rng.UniformIndex(3);
    for (std::size_t r = 0; r < rounds; ++r) line = MutateLine(&rng, line);

    const Result<Command> cmd = ParseCommandLine(line);
    if (!cmd.ok()) continue;
    const json::Value v = ExecuteCommand(&engine, &session, *cmd);
    CheckResponse(v, line);

    // Mutated GEN/DROP lines accumulate or destroy datasets; periodically
    // reset so the corpus dataset exists and memory stays bounded.
    if (iter % 500 == 499) {
      for (const std::string& name : engine.ListDatasets()) {
        ASSERT_TRUE(engine.DropDataset(name).ok());
      }
      session.dataset.clear();
      bootstrap();
    }
  }

  // The session survived 10k hostile frames: it must still answer cleanly.
  const json::Value ping =
      ExecuteCommand(&engine, &session, *ParseCommandLine("PING"));
  EXPECT_TRUE(ping["ok"].as_bool());
  const json::Value match = ExecuteCommand(
      &engine, &session, *ParseCommandLine("MATCH s q=0:2:8"));
  EXPECT_TRUE(match["ok"].as_bool()) << match.Dump();
}

TEST(ProtocolFuzzTest, DurabilityFramesNeverCrashOrEscapeTheDataDir) {
  const std::string dir = ::testing::TempDir() + "/onex_fuzz_durability";
  std::filesystem::remove_all(dir);
  {
    Engine engine;
    Session session;
    DurabilityOptions durability;
    durability.dir = dir;
    durability.fsync = false;
    ASSERT_TRUE(engine.EnableDurability(durability).ok());
    for (const char* line :
         {"GEN s sine num=4 len=12 seed=7", "PREPARE s st=0.2 maxlen=8"}) {
      const json::Value v =
          ExecuteCommand(&engine, &session, *ParseCommandLine(line));
      ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
    }

    const std::vector<std::string> durability_corpus = {
        "PERSIST",
        "PERSIST dir=/definitely/not/used because=durability-is-rooted",
        "PERSIST dir=elsewhere every=10 fsync=0",
        "PERSIST every=999999999999999",
        "CHECKPOINT s",
        "CHECKPOINT",
        "CHECKPOINT dataset=s",
        "CHECKPOINT missing",
        "STATS s",
        "DATASETS",
        "EXTEND s series=0 points=0.2,0.4",
    };
    Rng rng(0xD00D);
    for (int iter = 0; iter < 3000; ++iter) {
      std::string line =
          durability_corpus[rng.UniformIndex(durability_corpus.size())];
      const std::size_t rounds = rng.UniformIndex(3);
      for (std::size_t r = 0; r < rounds; ++r) line = MutateLine(&rng, line);
      const Result<Command> cmd = ParseCommandLine(line);
      if (!cmd.ok()) continue;
      const json::Value v = ExecuteCommand(&engine, &session, *cmd);
      CheckResponse(v, line);
      // No hostile frame may re-root the journal.
      ASSERT_EQ(engine.registry().data_dir(), dir) << line;
    }

    // The cap: a background-checkpoint threshold past the limit is an
    // InvalidArgument even though durability is already on.
    const json::Value capped = ExecuteCommand(
        &engine, &session,
        *ParseCommandLine("PERSIST dir=x every=999999999999999"));
    EXPECT_FALSE(capped["ok"].as_bool());
    EXPECT_EQ(capped["code"].as_string(), "InvalidArgument");
    // A straight CHECKPOINT still works after the bombardment.
    const json::Value ckpt =
        ExecuteCommand(&engine, &session, *ParseCommandLine("CHECKPOINT s"));
    EXPECT_TRUE(ckpt["ok"].as_bool()) << ckpt.Dump();
  }
  // Whatever the hostile frames did, the journal they left is recoverable.
  Engine recovered;
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = false;
  ASSERT_TRUE(recovered.EnableDurability(durability).ok());
  EXPECT_TRUE(recovered.Get("s").ok());
  std::filesystem::remove_all(dir);
}

TEST(ProtocolFuzzTest, SizeDrivingOptionsAreCapped) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN s sine num=4 len=12"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine, &session,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=8"))["ok"]
          .as_bool());
  // Each of these would, uncapped, command an allocation proportional to
  // the number in the frame.
  std::string flood = "BATCH s k=100000 q=0:0:8";
  for (int i = 0; i < 2000; ++i) flood += ";0:0:8";
  // 100001 points: one past the EXTEND cap.
  std::string extend_flood = "EXTEND s series=0 points=0";
  for (int i = 0; i < 100000; ++i) extend_flood += ",0";
  for (const std::string& line : {
           std::string("GEN huge walk num=1000000000 len=1000000000"),
           std::string("GEN huge walk num=2000000 len=2000000"),
           std::string("CATALOG s points=999999999"),
           std::string("KNN s q=0:0:8 k=999999999"),
           std::string("BATCH s q=0:0:8 k=999999999"),
           std::string("THRESHOLD s pairs=999999999"),
           flood,  // spec-count flood: 2001 queries x max k
           extend_flood,
       }) {
    const json::Value v =
        ExecuteCommand(&engine, &session, *ParseCommandLine(line));
    EXPECT_FALSE(v["ok"].as_bool()) << line;
    EXPECT_EQ(v["code"].as_string(), "InvalidArgument") << line;
  }
}

}  // namespace
}  // namespace onex::net
