/// Unit tests for the unified distance-kernel layer (DESIGN.md §14): every
/// table (scalar reference and the best vectorized table for this CPU) must
/// compute the same mathematics — exact agreement with naive references for
/// the scalar table, tight-tolerance agreement across tables (the AVX2 DTW
/// prefix-scan and blocked reductions may reassociate sums) — and the
/// dispatch plumbing (mode switch, env override, workspace reuse) must never
/// change results.
#include "onex/distance/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/distance/dtw.h"

namespace onex {
namespace {

constexpr double kInfTest = std::numeric_limits<double>::infinity();

std::vector<double> RandomVec(Rng* rng, std::size_t n, double scale = 1.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Gaussian(0.0, scale);
  return v;
}

/// Naive banded DTW over squared costs — the reference every table must
/// match (exactly for the order-fixed tables, to tolerance for AVX2).
double NaiveDtwSq(const std::vector<double>& a, const std::vector<double>& b,
                  int window) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<double>> d(n + 1,
                                     std::vector<double>(m + 1, kInfTest));
  d[0][0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (window >= 0) {
        const long long diff = static_cast<long long>(i) -
                               static_cast<long long>(j);
        if (diff > window || -diff > window) continue;
      }
      const double c = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
      d[i][j] = c + std::min({d[i - 1][j - 1], d[i - 1][j], d[i][j - 1]});
    }
  }
  return d[n][m];
}

/// Naive sliding min/max envelope.
void NaiveEnvelope(const std::vector<double>& x, int window,
                   std::vector<double>* lo, std::vector<double>* up) {
  const std::size_t n = x.size();
  lo->assign(n, 0.0);
  up->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t first = 0, last = n - 1;
    if (window >= 0 && static_cast<std::size_t>(window) < n) {
      first = i >= static_cast<std::size_t>(window)
                  ? i - static_cast<std::size_t>(window)
                  : 0;
      last = std::min(n - 1, i + static_cast<std::size_t>(window));
    }
    double mn = x[first], mx = x[first];
    for (std::size_t j = first; j <= last; ++j) {
      mn = std::min(mn, x[j]);
      mx = std::max(mx, x[j]);
    }
    (*lo)[i] = mn;
    (*up)[i] = mx;
  }
}

class KernelTableTest : public ::testing::TestWithParam<const DistanceKernel*> {
 protected:
  const DistanceKernel& kernel() const { return *GetParam(); }
};

TEST_P(KernelTableTest, SquaredEuclideanMatchesNaive) {
  Rng rng(101);
  for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 63u, 64u, 65u, 257u}) {
    const std::vector<double> a = RandomVec(&rng, n);
    const std::vector<double> b = RandomVec(&rng, n);
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      want += (a[i] - b[i]) * (a[i] - b[i]);
    }
    const double got = kernel().squared_euclidean(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-9 * (1.0 + want)) << kernel().name << " n=" << n;
  }
}

TEST_P(KernelTableTest, SquaredEuclideanEarlyAbandonAgrees) {
  Rng rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.UniformIndex(130);
    const std::vector<double> a = RandomVec(&rng, n);
    const std::vector<double> b = RandomVec(&rng, n);
    // The EA form may use a different (blocked) reduction order than the
    // plain form, so the two agree to tolerance; the EA form against
    // different non-abandoning cutoffs runs identical arithmetic and must
    // agree with itself bitwise.
    const double plain = kernel().squared_euclidean(a.data(), b.data(), n);
    const double exact =
        kernel().squared_euclidean_ea(a.data(), b.data(), n, kInfTest);
    EXPECT_NEAR(plain, exact, 1e-9 * (1.0 + plain)) << kernel().name;
    const double kept = kernel().squared_euclidean_ea(a.data(), b.data(), n,
                                                      exact * 1.01 + 1.0);
    EXPECT_EQ(kept, exact) << kernel().name;
    // Cutoff below: must report +inf (provably above the cutoff).
    if (exact > 0.0) {
      const double dropped =
          kernel().squared_euclidean_ea(a.data(), b.data(), n, exact * 0.5);
      EXPECT_TRUE(std::isinf(dropped)) << kernel().name;
    }
  }
}

TEST_P(KernelTableTest, KeoghEnvelopeMatchesNaive) {
  Rng rng(303);
  for (const std::size_t n : {1u, 2u, 5u, 17u, 64u, 100u}) {
    const std::vector<double> x = RandomVec(&rng, n);
    for (const int w : {-1, 0, 1, 3, static_cast<int>(n),
                        static_cast<int>(n) + 5}) {
      std::vector<double> lo(n), up(n), nlo, nup;
      kernel().keogh_envelope(x.data(), n, w, lo.data(), up.data());
      NaiveEnvelope(x, w, &nlo, &nup);
      for (std::size_t i = 0; i < n; ++i) {
        // Envelopes are pure min/max — exact under every table.
        EXPECT_EQ(lo[i], nlo[i]) << kernel().name << " n=" << n << " w=" << w;
        EXPECT_EQ(up[i], nup[i]) << kernel().name << " n=" << n << " w=" << w;
      }
    }
  }
}

TEST_P(KernelTableTest, LbKeoghSqMatchesNaivePenalty) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.UniformIndex(90);
    const std::vector<double> q = RandomVec(&rng, n);
    const std::vector<double> c = RandomVec(&rng, n);
    std::vector<double> lo(n), up(n);
    kernel().keogh_envelope(q.data(), n, 2, lo.data(), up.data());
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (c[i] > up[i]) {
        want += (c[i] - up[i]) * (c[i] - up[i]);
      } else if (c[i] < lo[i]) {
        want += (lo[i] - c[i]) * (lo[i] - c[i]);
      }
    }
    const double got =
        kernel().lb_keogh_sq(lo.data(), up.data(), c.data(), n, kInfTest);
    EXPECT_NEAR(got, want, 1e-9 * (1.0 + want)) << kernel().name;
    if (want > 0.0) {
      EXPECT_TRUE(std::isinf(
          kernel().lb_keogh_sq(lo.data(), up.data(), c.data(), n, want * 0.5)))
          << kernel().name;
    }
  }
}

TEST_P(KernelTableTest, LbKeoghGroupSqMatchesClampedForm) {
  Rng rng(505);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.UniformIndex(70);
    std::vector<double> qlo(n), qup(n), glo(n), gup(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.Gaussian(0.0, 1.0), b = rng.Gaussian(0.0, 1.0);
      qlo[i] = std::min(a, b);
      qup[i] = std::max(a, b);
      const double c = rng.Gaussian(0.5, 1.0), d = rng.Gaussian(0.5, 1.0);
      glo[i] = std::min(c, d);
      gup[i] = std::max(c, d);
    }
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double over = std::max(glo[i] - qup[i], 0.0);
      const double under = std::max(qlo[i] - gup[i], 0.0);
      want += over * over + under * under;
    }
    const double got = kernel().lb_keogh_group_sq(qlo.data(), qup.data(),
                                                  glo.data(), gup.data(), n);
    EXPECT_NEAR(got, want, 1e-9 * (1.0 + want)) << kernel().name;
    // Overlapping envelopes (group inside query) incur zero penalty.
    const double zero = kernel().lb_keogh_group_sq(qlo.data(), qup.data(),
                                                   qlo.data(), qup.data(), n);
    EXPECT_EQ(zero, 0.0) << kernel().name;
  }
}

TEST_P(KernelTableTest, DtwMatchesNaiveReference) {
  Rng rng(606);
  DtwWorkspace ws;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.UniformIndex(40);
    const std::size_t m = 1 + rng.UniformIndex(40);
    const std::vector<double> a = RandomVec(&rng, n);
    const std::vector<double> b = RandomVec(&rng, m);
    for (int w : {-1, 0, 2, 8}) {
      const int eff = EffectiveWindow(n, m, w);
      if (w >= 0 && eff != w) continue;  // window below |n-m| not admissible
      const double want = NaiveDtwSq(a, b, eff);
      const double got = kernel().dtw_ea_sq(a.data(), n, b.data(), m,
                                            kInfTest, eff, &ws);
      EXPECT_NEAR(got, want, 1e-9 * (1.0 + want))
          << kernel().name << " n=" << n << " m=" << m << " w=" << w;
    }
  }
}

TEST_P(KernelTableTest, DtwEarlyAbandonDecisionIsExact) {
  Rng rng(707);
  DtwWorkspace ws;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.UniformIndex(48);
    const std::size_t m = 2 + rng.UniformIndex(48);
    const std::vector<double> a = RandomVec(&rng, n);
    const std::vector<double> b = RandomVec(&rng, m);
    const int w = EffectiveWindow(n, m, trial % 3 == 0 ? -1 : 5);
    const double exact =
        kernel().dtw_ea_sq(a.data(), n, b.data(), m, kInfTest, w, &ws);
    // A cutoff above the true value must never abandon; the returned value
    // must be the exact result (identical arithmetic, same table).
    const double kept = kernel().dtw_ea_sq(a.data(), n, b.data(), m,
                                           exact * 1.001 + 1e-6, w, &ws);
    EXPECT_EQ(kept, exact) << kernel().name;
    // A cutoff below the true value: either the exact value (> cutoff, so
    // the caller prunes anyway) or +inf. Both yield the same decision.
    const double cut = exact * 0.25;
    const double maybe =
        kernel().dtw_ea_sq(a.data(), n, b.data(), m, cut, w, &ws);
    EXPECT_TRUE(std::isinf(maybe) || maybe == exact) << kernel().name;
    if (!std::isinf(maybe)) EXPECT_GT(maybe, cut);
  }
}

TEST_P(KernelTableTest, DtwIdenticalInputsAreExactlyZero) {
  Rng rng(808);
  DtwWorkspace ws;
  for (const std::size_t n : {1u, 2u, 15u, 16u, 17u, 64u, 100u}) {
    const std::vector<double> a = RandomVec(&rng, n);
    for (const int w : {-1, 0, 3}) {
      const double d =
          kernel().dtw_ea_sq(a.data(), n, a.data(), n, kInfTest, w, &ws);
      // Never negative, whatever the band: a few-ulps-negative cell would
      // turn into NaN under sqrt and silently drop exact matches (the AVX2
      // scan body clamps at zero for exactly this reason).
      EXPECT_GE(d, 0.0) << kernel().name << " n=" << n << " w=" << w;
      if (w < 0) {
        // Unconstrained self-distance is exactly zero under every table:
        // along the diagonal the row prefix sum does not advance, so even
        // the reassociated AVX2 scan cancels exactly.
        EXPECT_EQ(d, 0.0) << kernel().name << " n=" << n;
      } else {
        // Banded scan rows may round diagonal cancellation by final ulps.
        EXPECT_LE(d, 1e-12 * static_cast<double>(n))
            << kernel().name << " n=" << n << " w=" << w;
      }
    }
  }
}

TEST_P(KernelTableTest, WorkspaceReuseNeverChangesResults) {
  Rng rng(909);
  DtwWorkspace reused;
  // Alternate large and small problems so the reused buffers carry stale
  // contents beyond the live band; results must match a fresh workspace.
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t n = trial % 2 == 0 ? 3 + rng.UniformIndex(5)
                                         : 40 + rng.UniformIndex(60);
    const std::size_t m = trial % 2 == 0 ? 50 + rng.UniformIndex(50)
                                         : 2 + rng.UniformIndex(6);
    const std::vector<double> a = RandomVec(&rng, n);
    const std::vector<double> b = RandomVec(&rng, m);
    const int w = EffectiveWindow(n, m, trial % 3 == 0 ? 4 : -1);
    DtwWorkspace fresh;
    const double want =
        kernel().dtw_ea_sq(a.data(), n, b.data(), m, kInfTest, w, &fresh);
    const double got =
        kernel().dtw_ea_sq(a.data(), n, b.data(), m, kInfTest, w, &reused);
    EXPECT_EQ(got, want) << kernel().name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Tables, KernelTableTest,
                         ::testing::Values(&ScalarKernel(), &SimdKernel()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

// ---------------------------------------------------------------------------
// Cross-table agreement: the vectorized tables may reassociate reductions,
// so values agree to tight tolerance rather than bitwise. DTW under the
// portable table is documented bit-identical to scalar; AVX2 may differ in
// final ulps.
// ---------------------------------------------------------------------------

TEST(KernelCrossTableTest, ScalarAndSimdAgreeToTolerance) {
  const DistanceKernel& s = ScalarKernel();
  const DistanceKernel& v = SimdKernel();
  Rng rng(1234);
  DtwWorkspace ws, wv;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.UniformIndex(200);
    const std::vector<double> a = RandomVec(&rng, n);
    const std::vector<double> b = RandomVec(&rng, n);
    const double ed_s = s.squared_euclidean(a.data(), b.data(), n);
    const double ed_v = v.squared_euclidean(a.data(), b.data(), n);
    EXPECT_NEAR(ed_s, ed_v, 1e-9 * (1.0 + ed_s));

    std::vector<double> lo(n), up(n);
    s.keogh_envelope(a.data(), n, 3, lo.data(), up.data());
    const double lb_s = s.lb_keogh_sq(lo.data(), up.data(), b.data(), n,
                                      kInfTest);
    const double lb_v = v.lb_keogh_sq(lo.data(), up.data(), b.data(), n,
                                      kInfTest);
    EXPECT_NEAR(lb_s, lb_v, 1e-9 * (1.0 + lb_s));

    const std::size_t m = 1 + rng.UniformIndex(60);
    const std::vector<double> c = RandomVec(&rng, m);
    const int w = EffectiveWindow(n, m, -1);
    const double dtw_s =
        s.dtw_ea_sq(a.data(), n, c.data(), m, kInfTest, w, &ws);
    const double dtw_v =
        v.dtw_ea_sq(a.data(), n, c.data(), m, kInfTest, w, &wv);
    EXPECT_NEAR(dtw_s, dtw_v, 1e-9 * (1.0 + dtw_s)) << "n=" << n << " m=" << m;
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(KernelDispatchTest, ModeSwitchSelectsTheRequestedTable) {
  const KernelMode before = GetKernelMode();
  SetKernelMode(KernelMode::kScalar);
  EXPECT_EQ(GetKernelMode(), KernelMode::kScalar);
  EXPECT_STREQ(ActiveKernel().name, ScalarKernel().name);
  SetKernelMode(KernelMode::kSimd);
  EXPECT_EQ(GetKernelMode(), KernelMode::kSimd);
  EXPECT_STREQ(ActiveKernel().name, SimdKernel().name);
  SetKernelMode(KernelMode::kAuto);
  EXPECT_EQ(GetKernelMode(), KernelMode::kAuto);
  // Auto picks the widest table, which is exactly SimdKernel().
  EXPECT_STREQ(ActiveKernel().name, SimdKernel().name);
  SetKernelMode(before);
}

TEST(KernelDispatchTest, TablesAreDistinctAndNamed) {
  EXPECT_STREQ(ScalarKernel().name, "scalar");
  EXPECT_NE(&ScalarKernel(), &SimdKernel());
  // The simd table is either the portable vectorized build or a wider ISA
  // specialization; SimdDispatchAvailable reports which.
  if (SimdDispatchAvailable()) {
    EXPECT_STREQ(SimdKernel().name, "avx2");
  } else {
    EXPECT_STREQ(SimdKernel().name, "simd");
  }
}

TEST(KernelDispatchTest, SpanWrappersRouteThroughActiveTable) {
  // The convenience wrappers must give the same answers under both modes
  // (to tolerance — the tables may differ in ulps).
  Rng rng(4321);
  const std::vector<double> q = RandomVec(&rng, 50);
  const std::vector<double> c = RandomVec(&rng, 50);
  Envelope env = ComputeKeoghEnvelope(q, 4);

  const KernelMode before = GetKernelMode();
  SetKernelMode(KernelMode::kScalar);
  const double kim_s = LbKim(q, c);
  const double keogh_s = LbKeogh(env, c);
  SetKernelMode(KernelMode::kSimd);
  const double kim_v = LbKim(q, c);
  const double keogh_v = LbKeogh(env, c);
  SetKernelMode(before);

  EXPECT_EQ(kim_s, kim_v);  // LB_Kim is two points — exact everywhere.
  EXPECT_NEAR(keogh_s, keogh_v, 1e-9 * (1.0 + keogh_s));
}

TEST(KernelDispatchTest, EnvelopeWindowCoversSemantics) {
  EXPECT_TRUE(EnvelopeWindowCovers(-1, -1));
  EXPECT_TRUE(EnvelopeWindowCovers(-1, 0));
  EXPECT_TRUE(EnvelopeWindowCovers(-1, 100));
  EXPECT_TRUE(EnvelopeWindowCovers(5, 5));
  EXPECT_TRUE(EnvelopeWindowCovers(5, 3));
  EXPECT_TRUE(EnvelopeWindowCovers(5, 0));
  EXPECT_FALSE(EnvelopeWindowCovers(5, 6));
  EXPECT_FALSE(EnvelopeWindowCovers(5, -1));  // unconstrained query needs -1
  EXPECT_FALSE(EnvelopeWindowCovers(0, -1));
}

}  // namespace
}  // namespace onex
