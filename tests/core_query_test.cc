#include "onex/core/query_processor.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/baseline/brute_force.h"
#include "onex/distance/warping_path.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

struct Fixture {
  std::shared_ptr<const Dataset> dataset;
  std::unique_ptr<OnexBase> base;
};

Fixture MakeFixture(double st = 0.15, std::uint64_t seed = 42,
                    std::size_t num = 8, std::size_t len = 20,
                    CentroidPolicy policy = CentroidPolicy::kRunningMean) {
  gen::SineFamilyOptions gopt;
  gopt.num_series = num;
  gopt.length = len;
  gopt.seed = seed;
  Result<Dataset> norm = Normalize(gen::MakeSineFamilies(gopt),
                                   NormalizationKind::kMinMaxDataset);
  Fixture f;
  f.dataset = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions bopt;
  bopt.st = st;
  bopt.min_length = 4;
  bopt.max_length = 12;
  bopt.centroid_policy = policy;
  f.base = std::make_unique<OnexBase>(
      std::move(OnexBase::Build(f.dataset, bopt)).value());
  return f;
}

std::vector<double> QueryFrom(const Fixture& f, std::size_t series,
                              std::size_t start, std::size_t len) {
  const std::span<const double> s = (*f.dataset)[series].Slice(start, len);
  return {s.begin(), s.end()};
}

TEST(QueryProcessorTest, RejectsDegenerateInputs) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  EXPECT_FALSE(qp.BestMatchQuery(std::vector<double>{}).ok());
  EXPECT_FALSE(qp.BestMatchQuery(std::vector<double>{1.0}).ok());
  EXPECT_FALSE(qp.KnnQuery(std::vector<double>{1.0, 2.0}, 0).ok());
}

TEST(QueryProcessorTest, ExactSubsequenceIsItsOwnBestMatch) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  const std::vector<double> q = QueryFrom(f, 2, 3, 8);
  // Exhaustive mode keeps refining groups within the ST slack, which always
  // reaches the query's own group (its representative is within ST/2).
  QueryOptions opt;
  opt.exhaustive = true;
  Result<BestMatch> m = qp.BestMatchQuery(q, opt);
  ASSERT_TRUE(m.ok());
  // The query IS in the base, so the best match has distance 0 (itself or an
  // identical subsequence).
  EXPECT_NEAR(m->normalized_dtw, 0.0, 1e-9);
}

TEST(QueryProcessorTest, MatchCarriesValidPathAndMetadata) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  const std::vector<double> q = QueryFrom(f, 0, 0, 10);
  Result<BestMatch> m = qp.BestMatchQuery(q);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->length, m->ref.length);
  EXPECT_TRUE(IsValidWarpingPath(m->path, q.size(), m->ref.length));
  // Path cost equals the reported distance.
  const std::span<const double> mv = m->ref.Resolve(*f.dataset);
  EXPECT_NEAR(WarpingPathCost(q, mv, m->path), m->dtw, 1e-9);
  // Group index refers into the right length class.
  Result<const LengthClass*> cls = f.base->FindLengthClass(m->length);
  ASSERT_TRUE(cls.ok());
  ASSERT_LT(m->group_index, (*cls)->groups.size());
}

TEST(QueryProcessorTest, PathComputationCanBeDisabled) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  QueryOptions opt;
  opt.compute_path = false;
  Result<BestMatch> m = qp.BestMatchQuery(QueryFrom(f, 1, 2, 8), opt);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->path.empty());
}

TEST(QueryProcessorTest, LengthRestrictionsAreHonored) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  QueryOptions opt;
  opt.min_length = 6;
  opt.max_length = 8;
  Result<BestMatch> m = qp.BestMatchQuery(QueryFrom(f, 0, 0, 10), opt);
  ASSERT_TRUE(m.ok());
  EXPECT_GE(m->length, 6u);
  EXPECT_LE(m->length, 8u);

  opt.min_length = 100;
  opt.max_length = 200;
  EXPECT_FALSE(qp.BestMatchQuery(QueryFrom(f, 0, 0, 10), opt).ok());
}

TEST(QueryProcessorTest, PruningTogglesPreserveTheAnswer) {
  const Fixture f = MakeFixture(0.12, 77);
  QueryProcessor qp(f.base.get());
  const std::vector<double> q = QueryFrom(f, 3, 1, 9);

  QueryOptions all_on;
  QueryOptions no_lb;
  no_lb.use_lower_bounds = false;
  QueryOptions no_ea;
  no_ea.use_early_abandon = false;
  QueryOptions none;
  none.use_lower_bounds = false;
  none.use_early_abandon = false;

  Result<BestMatch> m0 = qp.BestMatchQuery(q, all_on);
  Result<BestMatch> m1 = qp.BestMatchQuery(q, no_lb);
  Result<BestMatch> m2 = qp.BestMatchQuery(q, no_ea);
  Result<BestMatch> m3 = qp.BestMatchQuery(q, none);
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m3.ok());
  EXPECT_NEAR(m0->normalized_dtw, m3->normalized_dtw, 1e-9);
  EXPECT_NEAR(m1->normalized_dtw, m3->normalized_dtw, 1e-9);
  EXPECT_NEAR(m2->normalized_dtw, m3->normalized_dtw, 1e-9);
}

TEST(QueryProcessorTest, StatsCountWork) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  QueryStats stats;
  ASSERT_TRUE(qp.BestMatchQuery(QueryFrom(f, 0, 0, 8), {}, &stats).ok());
  EXPECT_EQ(stats.groups_total, f.base->TotalGroups());
  EXPECT_GT(stats.rep_dtw_evaluations, 0u);
  EXPECT_GT(stats.member_dtw_evaluations, 0u);
}

TEST(QueryProcessorTest, LowerBoundsReduceWork) {
  const Fixture f = MakeFixture(0.1, 5, 10, 24);
  QueryProcessor qp(f.base.get());
  const std::vector<double> q = QueryFrom(f, 4, 2, 10);

  QueryStats pruned, unpruned;
  QueryOptions on;
  QueryOptions off;
  off.use_lower_bounds = false;
  off.use_early_abandon = false;
  ASSERT_TRUE(qp.BestMatchQuery(q, on, &pruned).ok());
  ASSERT_TRUE(qp.BestMatchQuery(q, off, &unpruned).ok());
  EXPECT_LE(pruned.rep_dtw_evaluations, unpruned.rep_dtw_evaluations);
}

TEST(QueryProcessorTest, KnnReturnsSortedDistinctMatches) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  Result<std::vector<BestMatch>> knn =
      qp.KnnQuery(QueryFrom(f, 0, 0, 8), 5);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 5u);
  for (std::size_t i = 1; i < knn->size(); ++i) {
    EXPECT_LE((*knn)[i - 1].normalized_dtw, (*knn)[i].normalized_dtw);
  }
  // All answers are distinct subsequences.
  std::set<SubseqRef> refs;
  for (const BestMatch& m : *knn) {
    EXPECT_TRUE(refs.insert(m.ref).second);
  }
}

TEST(QueryProcessorTest, KnnFirstEqualsBestMatch) {
  const Fixture f = MakeFixture();
  QueryProcessor qp(f.base.get());
  const std::vector<double> q = QueryFrom(f, 5, 0, 12);
  Result<BestMatch> best = qp.BestMatchQuery(q);
  Result<std::vector<BestMatch>> knn = qp.KnnQuery(q, 4);
  ASSERT_TRUE(best.ok());
  ASSERT_TRUE(knn.ok());
  EXPECT_NEAR(best->normalized_dtw, knn->front().normalized_dtw, 1e-12);
}

TEST(QueryProcessorTest, ExploringMoreGroupsNeverWorsensTheAnswer) {
  const Fixture f = MakeFixture(0.25, 11);
  QueryProcessor qp(f.base.get());
  const std::vector<double> q = QueryFrom(f, 6, 3, 9);
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    QueryOptions opt;
    opt.explore_top_groups = k;
    Result<BestMatch> m = qp.BestMatchQuery(q, opt);
    ASSERT_TRUE(m.ok());
    EXPECT_LE(m->normalized_dtw, prev + 1e-12);
    prev = m->normalized_dtw;
  }
}

/// The paper's §3.2 guarantee, tested as a property over datasets: the ONEX
/// answer is within the similarity threshold of the exact optimum.
class QueryQualityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryQualityTest, AnswerWithinStOfExactOptimum) {
  const double st = 0.15;
  const Fixture f = MakeFixture(st, GetParam(), 6, 16);
  QueryProcessor qp(f.base.get());
  Rng rng(GetParam() + 100);

  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t series = rng.UniformIndex(f.dataset->size());
    const std::size_t len = 5 + rng.UniformIndex(6);
    const std::size_t start =
        rng.UniformIndex((*f.dataset)[series].length() - len + 1);
    const std::vector<double> q = QueryFrom(f, series, start, len);

    QueryOptions opt;
    opt.exhaustive = true;  // the mode that carries the paper's ST guarantee
    Result<BestMatch> onex_ans = qp.BestMatchQuery(q, opt);
    ASSERT_TRUE(onex_ans.ok());

    ScanScope scope;
    scope.min_length = 4;
    scope.max_length = 12;
    Result<ScanMatch> exact =
        BruteForceBestMatch(*f.dataset, q, ScanDistance::kDtw, scope);
    ASSERT_TRUE(exact.ok());

    EXPECT_LE(onex_ans->normalized_dtw, exact->normalized + st + 1e-9)
        << "series=" << series << " start=" << start << " len=" << len;
  }
}

TEST_P(QueryQualityTest, AnswerQualityHoldsForEveryCentroidPolicy) {
  const double st = 0.2;
  for (const CentroidPolicy policy :
       {CentroidPolicy::kFixedLeader, CentroidPolicy::kRunningMean,
        CentroidPolicy::kRunningMeanRepair}) {
    const Fixture f = MakeFixture(st, GetParam(), 5, 14, policy);
    QueryProcessor qp(f.base.get());
    const std::vector<double> q = QueryFrom(f, 0, 2, 7);
    QueryOptions opt;
    opt.exhaustive = true;
    Result<BestMatch> ans = qp.BestMatchQuery(q, opt);
    ASSERT_TRUE(ans.ok());
    ScanScope scope;
    scope.min_length = 4;
    scope.max_length = 12;
    Result<ScanMatch> exact =
        BruteForceBestMatch(*f.dataset, q, ScanDistance::kDtw, scope);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(ans->normalized_dtw, exact->normalized + st + 1e-9);
  }
}

TEST_P(QueryQualityTest, DefaultModeSatisfiesBridgingBound) {
  // The provable form of the paper's guarantee for the default (single
  // best-representative group) mode, under the fixed-leader policy where the
  // ST/2 radius is exact (DESIGN.md §5):
  //   DTW(q, ans) <= DTW(q, r*) + sqrt(M) * (ST/2) * sqrt(len)
  // with M the max multiplicity of the optimal q<->r* warping path.
  const double st = 0.2;
  const Fixture f =
      MakeFixture(st, GetParam(), 6, 16, CentroidPolicy::kFixedLeader);
  QueryProcessor qp(f.base.get());
  Rng rng(GetParam() + 400);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t series = rng.UniformIndex(f.dataset->size());
    const std::size_t len = 5 + rng.UniformIndex(6);
    const std::size_t start =
        rng.UniformIndex((*f.dataset)[series].length() - len + 1);
    std::vector<double> q = QueryFrom(f, series, start, len);
    for (double& v : q) v += rng.Uniform(-0.05, 0.05);

    Result<BestMatch> ans = qp.BestMatchQuery(q);  // default: paper mode
    ASSERT_TRUE(ans.ok());
    const LengthClass& cls = **f.base->FindLengthClass(ans->length);
    const SimilarityGroup& g = cls.groups[ans->group_index];
    const DtwAlignment align = DtwWithPath(q, g.centroid_span());
    const double mult =
        static_cast<double>(MaxSecondIndexMultiplicity(align.path));
    const double ed_radius =
        (st / 2.0) * std::sqrt(static_cast<double>(ans->length));
    EXPECT_LE(ans->dtw,
              align.distance + std::sqrt(mult) * ed_radius + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryQualityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace onex
