#ifndef ONEX_TESTS_TEST_UTIL_H_
#define ONEX_TESTS_TEST_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "onex/common/random.h"
#include "onex/ts/dataset.h"

namespace onex::testing {

/// Random series of length n with values in roughly [-1, 1].
inline std::vector<double> RandomSeries(Rng* rng, std::size_t n,
                                        double scale = 1.0) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng->Uniform(-scale, scale));
  return out;
}

/// Smooth random series (random walk) of length n.
inline std::vector<double> SmoothSeries(Rng* rng, std::size_t n,
                                        double step = 0.1) {
  std::vector<double> out;
  out.reserve(n);
  double v = rng->Gaussian(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian(0.0, step);
    out.push_back(v);
  }
  return out;
}

/// A tiny deterministic dataset of `num` smooth series of length `len`.
inline Dataset SmallDataset(std::size_t num = 6, std::size_t len = 24,
                            std::uint64_t seed = 17) {
  Rng rng(seed);
  Dataset ds("small");
  for (std::size_t s = 0; s < num; ++s) {
    ds.Add(TimeSeries("series_" + std::to_string(s), SmoothSeries(&rng, len)));
  }
  return ds;
}

}  // namespace onex::testing

#endif  // ONEX_TESTS_TEST_UTIL_H_
