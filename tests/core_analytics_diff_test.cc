/// Differential oracle suite for the analytics verbs (DESIGN.md §18):
/// randomized maintenance schedules (AppendSeries/ExtendSeries, the same
/// shapes core_incremental_diff_test drives) grow a base, then every
/// analytics answer is checked against a brute-force oracle that never
/// heard of groups. ANOMALY scores and MOTIF/DISCORD answers must agree
/// bit for bit (the pruning is admissible and ties break canonically);
/// CHANGEPOINT must agree with the unpruned recursion within the error
/// bound the pruned run itself reports (exactly, when it dropped nothing);
/// FORECAST must match the exhaustive k-NN continuation average. 8 seeds x
/// 8 schedules = 64 schedules per run, all deterministic.
#include "onex/core/analytics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/cancellation.h"
#include "onex/common/random.h"
#include "onex/core/incremental.h"
#include "onex/core/onex_base.h"
#include "onex/distance/euclidean.h"
#include "test_util.h"

namespace onex {
namespace {

constexpr double kSt = 0.3;
constexpr double kInf = std::numeric_limits<double>::infinity();

BaseBuildOptions Options(CentroidPolicy policy) {
  BaseBuildOptions opt;
  opt.st = kSt;
  opt.min_length = 4;
  opt.max_length = 0;
  opt.length_step = 2;
  opt.centroid_policy = policy;
  return opt;
}

/// Grows the base through a few maintenance ops so analytics run over the
/// streamed/maintained structure, not just a fresh build.
void RunSchedule(Rng* rng, OnexBase* base) {
  const std::size_t ops = 2 + rng->UniformIndex(3);
  for (std::size_t op = 0; op < ops; ++op) {
    if (rng->Bernoulli(0.35)) {
      TimeSeries fresh(
          "arr_" + std::to_string(op),
          testing::SmoothSeries(rng, 8 + rng->UniformIndex(7)));
      Result<OnexBase> next = AppendSeries(*base, fresh);
      ASSERT_TRUE(next.ok()) << next.status();
      *base = std::move(next).value();
    } else {
      const std::size_t series = rng->UniformIndex(base->dataset().size());
      Result<ExtendResult> next = ExtendSeries(
          *base, series,
          testing::SmoothSeries(rng, 1 + rng->UniformIndex(4)));
      ASSERT_TRUE(next.ok()) << next.status();
      *base = std::move(next->base);
    }
  }
}

struct OracleScore {
  SubseqRef ref;
  double score = 0.0;
  bool outlier = false;
};

/// Exhaustive centroid scan: the ANOMALY oracle.
std::vector<OracleScore> OracleAnomaly(const OnexBase& base, double eps,
                                       std::size_t min_pts,
                                       std::size_t length) {
  const Dataset& ds = base.dataset();
  std::vector<OracleScore> all;
  for (const LengthClass& cls : base.length_classes()) {
    if (length != 0 && cls.length != length) continue;
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        const std::span<const double> v = ref.Resolve(ds);
        OracleScore s;
        s.ref = ref;
        s.score = kInf;
        bool clustered = false;
        for (const SimilarityGroup& other : cls.groups) {
          const double d = NormalizedEuclidean(other.centroid_span(), v);
          s.score = std::min(s.score, d);
          if (d <= eps && other.size() >= min_pts) clustered = true;
        }
        s.outlier = !clustered;
        all.push_back(s);
      }
    }
  }
  return all;
}

/// All members of one class, group-major (the order analytics scans them).
std::vector<SubseqRef> ClassMembers(const LengthClass& cls) {
  std::vector<SubseqRef> refs;
  for (const SimilarityGroup& g : cls.groups) {
    for (const SubseqRef& ref : g.members()) refs.push_back(ref);
  }
  return refs;
}

class AnalyticsDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

/// Builds one maintained base per (seed, schedule) and hands it to `check`.
template <typename Fn>
void ForEachSchedule(std::uint64_t seed, Fn check) {
  for (int schedule = 0; schedule < 8; ++schedule) {
    Rng rng(seed * 10'000 + static_cast<std::uint64_t>(schedule));
    const CentroidPolicy policy = static_cast<CentroidPolicy>(schedule % 3);
    Dataset ds("analytics");
    const std::size_t num = 3 + rng.UniformIndex(3);
    for (std::size_t s = 0; s < num; ++s) {
      ds.Add(TimeSeries("s" + std::to_string(s),
                        testing::SmoothSeries(&rng,
                                              8 + rng.UniformIndex(5))));
    }
    Result<OnexBase> built = OnexBase::Build(
        std::make_shared<const Dataset>(std::move(ds)), Options(policy));
    ASSERT_TRUE(built.ok()) << built.status();
    OnexBase base = std::move(built).value();
    RunSchedule(&rng, &base);
    if (::testing::Test::HasFatalFailure()) return;
    check(&rng, base, schedule);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(AnalyticsDiffTest, AnomalyScoresMatchExhaustiveCentroidScanExactly) {
  ForEachSchedule(GetParam(), [](Rng* rng, const OnexBase& base,
                                 int schedule) {
    AnomalyOptions opt;
    opt.top_k = 1 + rng->UniformIndex(6);
    opt.min_pts = 1 + rng->UniformIndex(3);
    // Alternate the default ST/2 neighborhood with an explicit one.
    opt.eps = (schedule % 2 == 0) ? 0.0 : 0.05 + 0.1 * rng->Uniform(0.0, 1.0);
    Result<AnomalyReport> got_r = DetectAnomalies(base, opt);
    ASSERT_TRUE(got_r.ok()) << got_r.status();
    const AnomalyReport& got = *got_r;

    const double eps = opt.eps > 0.0 ? opt.eps : base.options().st / 2.0;
    std::vector<OracleScore> oracle =
        OracleAnomaly(base, eps, opt.min_pts, opt.length);
    ASSERT_EQ(got.members_scanned, oracle.size());
    std::size_t oracle_outliers = 0;
    for (const OracleScore& s : oracle) oracle_outliers += s.outlier ? 1 : 0;
    EXPECT_EQ(got.outliers, oracle_outliers);

    std::sort(oracle.begin(), oracle.end(),
              [](const OracleScore& a, const OracleScore& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.ref < b.ref;
              });
    if (oracle.size() > opt.top_k) oracle.resize(opt.top_k);
    ASSERT_EQ(got.findings.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(got.findings[i].ref, oracle[i].ref) << "schedule=" << schedule;
      // Bit-exact: early abandonment filters, it never alters a score.
      EXPECT_EQ(got.findings[i].score, oracle[i].score);
      EXPECT_EQ(got.findings[i].outlier, oracle[i].outlier);
    }
    // Every member-centroid pair is either evaluated exactly or abandoned —
    // the filter skips arithmetic, never a comparison.
    std::size_t centroid_pairs = 0;
    for (const LengthClass& cls : base.length_classes()) {
      centroid_pairs += ClassMembers(cls).size() * cls.groups.size();
    }
    EXPECT_EQ(got.distance_evals + got.evals_abandoned, centroid_pairs);
  });
}

TEST_P(AnalyticsDiffTest, MotifPairAndDiscordsMatchQuadraticScanExactly) {
  ForEachSchedule(GetParam(), [](Rng* rng, const OnexBase& base,
                                 int schedule) {
    MotifOptions opt;
    opt.top_k = 1 + rng->UniformIndex(4);
    opt.discords = 1 + rng->UniformIndex(4);
    Result<MotifReport> got_r = FindMotifs(base, opt);
    ASSERT_TRUE(got_r.ok()) << got_r.status();
    const MotifReport& got = *got_r;

    ASSERT_EQ(got.classes.size(), base.length_classes().size());
    for (std::size_t c = 0; c < got.classes.size(); ++c) {
      const LengthClass& cls = base.length_classes()[c];
      const MotifClassReport& out = got.classes[c];
      ASSERT_EQ(out.length, cls.length);
      const std::vector<SubseqRef> refs = ClassMembers(cls);
      const Dataset& ds = base.dataset();

      // Oracle motif pair: full O(n^2) scan, canonical tie-break.
      double best_d = kInf;
      SubseqRef best_a, best_b;
      bool found = false;
      for (std::size_t i = 0; i < refs.size(); ++i) {
        for (std::size_t j = i + 1; j < refs.size(); ++j) {
          SubseqRef a = refs[i], b = refs[j];
          if (a.Overlaps(b)) continue;
          if (b < a) std::swap(a, b);
          const double d =
              NormalizedEuclidean(a.Resolve(ds), b.Resolve(ds));
          if (!found || d < best_d ||
              (d == best_d && (a < best_a || (a == best_a && b < best_b)))) {
            best_d = d;
            best_a = a;
            best_b = b;
            found = true;
          }
        }
      }
      ASSERT_EQ(out.has_motif, found) << "schedule=" << schedule;
      if (found) {
        EXPECT_EQ(out.motif_a, best_a);
        EXPECT_EQ(out.motif_b, best_b);
        EXPECT_EQ(out.motif_distance, best_d);  // bit-exact
      }

      // Oracle discords: exact nearest non-overlapping neighbor per member.
      std::vector<Discord> oracle;
      for (const SubseqRef& m : refs) {
        double nn = kInf;
        for (const SubseqRef& other : refs) {
          if (other.Overlaps(m)) continue;
          nn = std::min(nn, NormalizedEuclidean(m.Resolve(ds),
                                                other.Resolve(ds)));
        }
        if (std::isfinite(nn)) oracle.push_back(Discord{m, nn});
      }
      std::sort(oracle.begin(), oracle.end(),
                [](const Discord& a, const Discord& b) {
                  if (a.distance != b.distance) return a.distance > b.distance;
                  return a.ref < b.ref;
                });
      if (oracle.size() > opt.discords) oracle.resize(opt.discords);
      ASSERT_EQ(out.discords.size(), oracle.size());
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(out.discords[i].ref, oracle[i].ref);
        EXPECT_EQ(out.discords[i].distance, oracle[i].distance);  // bit-exact
      }

      // Densest ranking agrees with a direct sort of group populations.
      std::vector<std::size_t> order(cls.groups.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (cls.groups[a].size() != cls.groups[b].size()) {
          return cls.groups[a].size() > cls.groups[b].size();
        }
        return a < b;
      });
      ASSERT_EQ(out.densest.size(),
                std::min<std::size_t>(opt.top_k, order.size()));
      for (std::size_t i = 0; i < out.densest.size(); ++i) {
        EXPECT_EQ(out.densest[i].group, order[i]);
        EXPECT_EQ(out.densest[i].count, cls.groups[order[i]].size());
      }
    }
  });
}

TEST_P(AnalyticsDiffTest, ChangepointTruncationStaysWithinReportedBound) {
  ForEachSchedule(GetParam(), [](Rng* rng, const OnexBase& base,
                                 int schedule) {
    // A series with a genuine regime change: the maintained series' values
    // plus a level shift half way, so run-length mass actually spreads.
    const std::size_t series = rng->UniformIndex(base.dataset().size());
    std::vector<double> values(base.dataset()[series].values());
    const std::size_t extra = 24 + rng->UniformIndex(16);
    double level = values.back() + 2.0 + rng->Uniform(0.0, 2.0);
    for (std::size_t i = 0; i < extra; ++i) {
      values.push_back(level + rng->Gaussian(0.0, 0.1));
      if (i == extra / 2) level -= 3.0;  // second changepoint mid-tail
    }

    ChangepointOptions exact_opt;
    exact_opt.hazard = 0.05;
    exact_opt.max_run = values.size() + 2;  // nothing can be dropped
    Result<ChangepointReport> exact_r = DetectChangepoints(values, exact_opt);
    ASSERT_TRUE(exact_r.ok()) << exact_r.status();
    const ChangepointReport& exact = *exact_r;
    EXPECT_EQ(exact.mass_dropped, 0.0);
    EXPECT_EQ(exact.error_bound, 0.0);
    EXPECT_EQ(exact.evaluated, values.size());

    // The detector actually reacts inside the constructed tail: the >= 2.0
    // jump out of the prefix must push the new-regime posterior clear of
    // the hazard somewhere in the tail (short, heavily-extended prefixes
    // keep old-run predictives broad, so the spike height varies by
    // schedule). Pre-fix, the reported statistic P(run = 0) was
    // identically the hazard rate (0.05 here) at every step, level shift
    // or not — this bound can then never clear.
    double max_in_tail = 0.0;
    for (std::size_t t = values.size() - extra; t < values.size(); ++t) {
      max_in_tail = std::max(max_in_tail, exact.change_probability[t]);
    }
    EXPECT_GT(max_in_tail, 1.5 * exact_opt.hazard)
        << "schedule=" << schedule << " len=" << values.size()
        << " extra=" << extra;

    // An untruncated rerun is bit-identical: the recursion is deterministic.
    ChangepointOptions rerun_opt = exact_opt;
    rerun_opt.max_run = 2 * values.size() + 5;
    Result<ChangepointReport> rerun = DetectChangepoints(values, rerun_opt);
    ASSERT_TRUE(rerun.ok());
    ASSERT_EQ(rerun->change_probability.size(),
              exact.change_probability.size());
    for (std::size_t t = 0; t < exact.change_probability.size(); ++t) {
      EXPECT_EQ(rerun->change_probability[t], exact.change_probability[t]);
    }
    EXPECT_EQ(rerun->map_run_length, exact.map_run_length);

    // Truncated runs must stay within the bound they themselves report.
    for (const std::size_t max_run : {std::size_t{4}, std::size_t{8},
                                      std::size_t{16}}) {
      ChangepointOptions pruned_opt = exact_opt;
      pruned_opt.max_run = max_run;
      Result<ChangepointReport> pruned_r =
          DetectChangepoints(values, pruned_opt);
      ASSERT_TRUE(pruned_r.ok()) << pruned_r.status();
      const ChangepointReport& pruned = *pruned_r;
      ASSERT_EQ(pruned.change_probability.size(),
                exact.change_probability.size());
      ASSERT_LE(pruned.error_bound, 1.0);
      for (std::size_t t = 0; t < exact.change_probability.size(); ++t) {
        EXPECT_LE(std::abs(pruned.change_probability[t] -
                           exact.change_probability[t]),
                  pruned.error_bound + 1e-12)
            << "schedule=" << schedule << " max_run=" << max_run
            << " t=" << t;
      }
      if (pruned.mass_dropped == 0.0) {
        for (std::size_t t = 0; t < exact.change_probability.size(); ++t) {
          EXPECT_EQ(pruned.change_probability[t],
                    exact.change_probability[t]);
        }
      }
    }

    // last= evaluates exactly the tail window, nothing else.
    ChangepointOptions tail_opt = exact_opt;
    tail_opt.last = extra;
    Result<ChangepointReport> tail = DetectChangepoints(values, tail_opt);
    ASSERT_TRUE(tail.ok());
    EXPECT_EQ(tail->evaluated, extra);
    const std::span<const double> tail_span =
        std::span<const double>(values).subspan(values.size() - extra);
    Result<ChangepointReport> tail_direct =
        DetectChangepoints(tail_span, exact_opt);
    ASSERT_TRUE(tail_direct.ok());
    ASSERT_EQ(tail->change_probability.size(),
              tail_direct->change_probability.size());
    for (std::size_t t = 0; t < tail->change_probability.size(); ++t) {
      EXPECT_EQ(tail->change_probability[t],
                tail_direct->change_probability[t]);
    }
  });
}

TEST(ChangepointDetectionTest, LevelShiftFiresAndQuietSeriesDoesNot) {
  // Deterministic pre-fix regression: a clean level shift must produce a
  // changepoint at exactly its first shifted point, and a quiet series
  // must produce none. Pre-fix the statistic was P(run = 0 | x_1:t),
  // which the BOCPD recursion makes identically equal to the hazard —
  // the default threshold of 0.5 could never fire on any input.
  std::vector<double> quiet(64, 0.25);
  Rng rng(5);
  for (double& v : quiet) v += rng.Gaussian(0.0, 0.01);
  const ChangepointOptions opt;  // hazard 0.01, threshold 0.5
  Result<ChangepointReport> quiet_r = DetectChangepoints(quiet, opt);
  ASSERT_TRUE(quiet_r.ok()) << quiet_r.status();
  EXPECT_TRUE(quiet_r->changepoints.empty());

  std::vector<double> shifted = quiet;
  for (std::size_t i = 32; i < shifted.size(); ++i) shifted[i] += 2.0;
  Result<ChangepointReport> shifted_r = DetectChangepoints(shifted, opt);
  ASSERT_TRUE(shifted_r.ok()) << shifted_r.status();
  ASSERT_FALSE(shifted_r->changepoints.empty());
  EXPECT_EQ(shifted_r->changepoints.front().index, 32u);
  EXPECT_GT(shifted_r->changepoints.front().probability, 0.5);
}

TEST_P(AnalyticsDiffTest, ForecastMatchesBruteForceNeighborAverage) {
  ForEachSchedule(GetParam(), [](Rng* rng, const OnexBase& base,
                                 int schedule) {
    const Dataset& ds = base.dataset();
    const std::size_t series = rng->UniformIndex(ds.size());
    ForecastOptions opt;
    opt.horizon = 1 + rng->UniformIndex(3);
    opt.k = 1 + rng->UniformIndex(3);
    Result<ForecastReport> got_r = ForecastSeries(base, series, opt);

    // Oracle: resolve the same tail, scan every member exhaustively.
    const std::size_t len = ds[series].length();
    std::size_t tail_len = 0;
    for (const LengthClass& cls : base.length_classes()) {
      if (cls.length <= len) tail_len = cls.length;
    }
    ASSERT_NE(tail_len, 0u);
    const SubseqRef tail_ref{series, len - tail_len, tail_len};
    const std::span<const double> tail = tail_ref.Resolve(ds);
    Result<const LengthClass*> cls_r = base.FindLengthClass(tail_len);
    ASSERT_TRUE(cls_r.ok());
    std::vector<std::pair<double, SubseqRef>> cand;
    for (const SubseqRef& m : ClassMembers(**cls_r)) {
      if (m.end() + opt.horizon > ds[m.series].length()) continue;
      if (m.Overlaps(tail_ref)) continue;
      cand.push_back({NormalizedEuclidean(tail, m.Resolve(ds)), m});
    }
    std::sort(cand.begin(), cand.end(),
              [](const std::pair<double, SubseqRef>& a,
                 const std::pair<double, SubseqRef>& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;
              });
    if (cand.size() > opt.k) cand.resize(opt.k);

    if (cand.empty()) {
      EXPECT_FALSE(got_r.ok());
      EXPECT_EQ(got_r.status().code(), StatusCode::kFailedPrecondition);
      return;
    }
    ASSERT_TRUE(got_r.ok()) << got_r.status();
    const ForecastReport& got = *got_r;
    EXPECT_EQ(got.tail_start, tail_ref.start);
    EXPECT_EQ(got.tail_length, tail_len);
    ASSERT_EQ(got.neighbors.size(), cand.size());
    for (std::size_t i = 0; i < cand.size(); ++i) {
      EXPECT_EQ(got.neighbors[i].ref, cand[i].second)
          << "schedule=" << schedule << " i=" << i;
      EXPECT_EQ(got.neighbors[i].distance, cand[i].first);  // bit-exact
    }
    std::vector<double> oracle_values(opt.horizon, 0.0);
    for (const auto& [d, m] : cand) {
      const std::span<const double> src = ds[m.series].values();
      for (std::size_t j = 0; j < opt.horizon; ++j) {
        oracle_values[j] += src[m.end() + j];
      }
    }
    for (double& v : oracle_values) {
      v /= static_cast<double>(cand.size());
    }
    ASSERT_EQ(got.values.size(), oracle_values.size());
    for (std::size_t j = 0; j < oracle_values.size(); ++j) {
      EXPECT_NEAR(got.values[j], oracle_values[j], 1e-9);
    }

    // Seasonal-naive: exact repetition of the last period.
    ForecastOptions naive;
    naive.method = ForecastMethod::kSeasonalNaive;
    naive.horizon = 5;
    naive.period = 1 + rng->UniformIndex(std::min<std::size_t>(len, 4));
    Result<ForecastReport> sn = ForecastSeries(base, series, naive);
    ASSERT_TRUE(sn.ok()) << sn.status();
    EXPECT_EQ(sn->period, naive.period);
    const std::span<const double> v = ds[series].values();
    for (std::size_t j = 0; j < naive.horizon; ++j) {
      EXPECT_EQ(sn->values[j], v[len - naive.period + (j % naive.period)]);
    }
  });
}

TEST_P(AnalyticsDiffTest, ExpiredCancellationStopsEveryVerb) {
  ForEachSchedule(GetParam(), [](Rng* rng, const OnexBase& base, int) {
    const Cancellation expired(Cancellation::Clock::now() -
                                   std::chrono::milliseconds(1),
                               nullptr);
    AnomalyOptions aopt;
    aopt.cancel = &expired;
    const Result<AnomalyReport> a = DetectAnomalies(base, aopt);
    ASSERT_FALSE(a.ok());
    EXPECT_EQ(a.status().code(), StatusCode::kDeadlineExceeded);

    ChangepointOptions copt;
    copt.cancel = &expired;
    const std::vector<double> values(16, 0.5);
    const Result<ChangepointReport> c = DetectChangepoints(values, copt);
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kDeadlineExceeded);

    MotifOptions mopt;
    mopt.cancel = &expired;
    const Result<MotifReport> m = FindMotifs(base, mopt);
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), StatusCode::kDeadlineExceeded);

    ForecastOptions fopt;
    fopt.cancel = &expired;
    const Result<ForecastReport> f =
        ForecastSeries(base, rng->UniformIndex(base.dataset().size()), fopt);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.status().code(), StatusCode::kDeadlineExceeded);

    // A live external-flag token flips mid-definition semantics: once the
    // flag is set, the same verbs stop with the same code.
    std::atomic<bool> gone{true};
    const Cancellation disconnected(&gone);
    ForecastOptions fopt2;
    fopt2.cancel = &disconnected;
    const Result<ForecastReport> f2 = ForecastSeries(base, 0, fopt2);
    ASSERT_FALSE(f2.ok());
    EXPECT_EQ(f2.status().code(), StatusCode::kDeadlineExceeded);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticsDiffTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace onex
