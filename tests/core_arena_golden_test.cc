/// Golden-file properties of the ONEXARENA checkpoint format
/// (core/arena_layout.h): byte-stable encoding (same inputs -> same bytes,
/// across independent builds and across an encode/parse/realize/encode round
/// trip), exact value round trips (the realized base serves the very same
/// bits, borrowed off a mapping or deep-copied), and corruption robustness —
/// every truncation prefix and 400 rounds of random byte flips must surface
/// as clean structured errors or realize into a base that still satisfies
/// its invariants, never UB. Mirror of core_base_io_golden_test.cc for the
/// binary format; runs under ASan in CI.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/core/arena_layout.h"
#include "onex/core/group_store.h"
#include "onex/core/onex_base.h"
#include "onex/ts/dataset.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

BaseBuildOptions GoldenOptions() {
  BaseBuildOptions opt;
  opt.st = 0.25;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

/// The full prepared picture an arena captures: raw values, frozen
/// normalization, and the base built on the normalized copy.
struct GoldenPrepared {
  Dataset raw;
  NormalizationParams params;
  std::shared_ptr<const Dataset> normalized;
  std::shared_ptr<const OnexBase> base;
};

GoldenPrepared BuildGolden() {
  GoldenPrepared g;
  g.raw = testing::SmallDataset(/*num=*/5, /*len=*/20, /*seed=*/99);
  Result<Dataset> norm =
      Normalize(g.raw, NormalizationKind::kMinMaxDataset, &g.params);
  EXPECT_TRUE(norm.ok()) << norm.status().ToString();
  g.normalized = std::make_shared<const Dataset>(*std::move(norm));
  Result<OnexBase> base = OnexBase::Build(g.normalized, GoldenOptions());
  EXPECT_TRUE(base.ok()) << base.status().ToString();
  g.base = std::make_shared<const OnexBase>(*std::move(base));
  return g;
}

std::string Encode(const GoldenPrepared& g) {
  Result<std::string> bytes = EncodeArena(
      g.raw, NormalizationKind::kMinMaxDataset, g.params, *g.base);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return *std::move(bytes);
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

/// Parse + realize in one step; materialized (owned storage) unless a
/// keepalive is given, in which case the stores borrow the buffer.
Result<RealizedArena> Realize(const std::string& bytes,
                              std::shared_ptr<const void> keepalive) {
  Result<ArenaView> view = ParseArena(AsBytes(bytes));
  if (!view.ok()) return view.status();
  return RealizeArena(*view, std::move(keepalive));
}

/// Structural invariants any successfully realized base must satisfy no
/// matter what bytes produced it (the fuzz tests' acceptance criterion).
void CheckInvariants(const RealizedArena& r) {
  ASSERT_NE(r.raw, nullptr);
  ASSERT_NE(r.normalized, nullptr);
  ASSERT_NE(r.base, nullptr);
  ASSERT_EQ(r.raw->size(), r.normalized->size());
  for (std::size_t s = 0; s < r.raw->size(); ++s) {
    ASSERT_EQ((*r.raw)[s].length(), (*r.normalized)[s].length());
  }
  std::size_t groups = 0;
  std::size_t members = 0;
  std::size_t prev_length = 0;
  for (const LengthClass& cls : r.base->length_classes()) {
    ASSERT_GT(cls.length, prev_length) << "length classes out of order";
    prev_length = cls.length;
    ASSERT_NE(cls.store, nullptr);
    ASSERT_EQ(cls.store->length(), cls.length);
    ASSERT_EQ(cls.groups.size(), cls.store->num_groups());
    for (std::size_t g = 0; g < cls.store->num_groups(); ++g) {
      ASSERT_EQ(cls.store->centroid(g).size(), cls.length);
      ASSERT_FALSE(cls.store->members(g).empty());
      for (const SubseqRef& ref : cls.store->members(g)) {
        ASSERT_EQ(ref.length, cls.length);
        ASSERT_TRUE(
            r.base->dataset().CheckRange(ref.series, ref.start, ref.length)
                .ok());
      }
    }
    groups += cls.store->num_groups();
    members += cls.store->total_members();
  }
  ASSERT_EQ(r.base->stats().num_groups, groups);
  ASSERT_EQ(r.base->stats().num_subsequences, members);
  ASSERT_GT(r.base->MemoryUsage(), 0u);
}

/// Bitwise comparison of a realized base against the golden one: centroids,
/// envelopes and memberships down to the last ulp.
void ExpectBitIdentical(const OnexBase& got, const OnexBase& want) {
  ASSERT_EQ(got.length_classes().size(), want.length_classes().size());
  for (std::size_t c = 0; c < want.length_classes().size(); ++c) {
    const LengthClass& gc = got.length_classes()[c];
    const LengthClass& wc = want.length_classes()[c];
    ASSERT_EQ(gc.length, wc.length);
    ASSERT_EQ(gc.store->num_groups(), wc.store->num_groups());
    for (std::size_t g = 0; g < wc.store->num_groups(); ++g) {
      const auto gcen = gc.store->centroid(g);
      const auto wcen = wc.store->centroid(g);
      ASSERT_EQ(gcen.size(), wcen.size());
      for (std::size_t i = 0; i < wcen.size(); ++i) {
        EXPECT_EQ(gcen[i], wcen[i]) << "centroid mismatch at class " << c
                                    << " group " << g << " index " << i;
      }
      const EnvelopeView ge = gc.store->envelope(g);
      const EnvelopeView we = wc.store->envelope(g);
      EXPECT_EQ(std::vector<double>(ge.lower.begin(), ge.lower.end()),
                std::vector<double>(we.lower.begin(), we.lower.end()));
      EXPECT_EQ(std::vector<double>(ge.upper.begin(), ge.upper.end()),
                std::vector<double>(we.upper.begin(), we.upper.end()));
      const auto gm = gc.store->members(g);
      const auto wm = wc.store->members(g);
      ASSERT_EQ(gm.size(), wm.size());
      for (std::size_t i = 0; i < wm.size(); ++i) {
        EXPECT_EQ(gm[i].series, wm[i].series);
        EXPECT_EQ(gm[i].start, wm[i].start);
        EXPECT_EQ(gm[i].length, wm[i].length);
      }
    }
  }
}

TEST(ArenaGoldenTest, IndependentBuildsEncodeToIdenticalBytes) {
  const std::string first = Encode(BuildGolden());
  const std::string second = Encode(BuildGolden());
  ASSERT_GT(first.size(), 64u) << "header plus sections";
  EXPECT_EQ(first, second);
  EXPECT_TRUE(LooksLikeArena(first));
}

TEST(ArenaGoldenTest, EncodeParseRealizeReencodeIsByteStable) {
  const GoldenPrepared golden = BuildGolden();
  const std::string bytes = Encode(golden);
  Result<RealizedArena> realized = Realize(bytes, nullptr);
  ASSERT_TRUE(realized.ok()) << realized.status().ToString();
  CheckInvariants(*realized);
  ExpectBitIdentical(*realized->base, *golden.base);
  // Raw and normalized values round-trip exactly (binary doubles, no text).
  for (std::size_t s = 0; s < golden.raw.size(); ++s) {
    EXPECT_EQ((*realized->raw)[s].values(), golden.raw[s].values());
    EXPECT_EQ((*realized->raw)[s].name(), golden.raw[s].name());
    EXPECT_EQ((*realized->normalized)[s].values(),
              (*golden.normalized)[s].values());
  }
  // And the realized state encodes back to the very same bytes.
  Result<std::string> resaved =
      EncodeArena(*realized->raw, NormalizationKind::kMinMaxDataset,
                  golden.params, *realized->base);
  ASSERT_TRUE(resaved.ok()) << resaved.status().ToString();
  EXPECT_EQ(bytes, *resaved);
}

TEST(ArenaGoldenTest, BorrowedRealizeServesTheBufferAndPinsIt) {
  const GoldenPrepared golden = BuildGolden();
  auto buffer = std::make_shared<std::string>(Encode(golden));
  Result<RealizedArena> realized = Realize(*buffer, buffer);
  ASSERT_TRUE(realized.ok()) << realized.status().ToString();
  for (const LengthClass& cls : realized->base->length_classes()) {
    EXPECT_TRUE(cls.store->borrowed());
    // Borrowed spans point into the buffer, not at copies.
    const double* centroid_data = cls.store->centroid(0).data();
    const char* begin = buffer->data();
    const char* end = begin + buffer->size();
    EXPECT_GE(reinterpret_cast<const char*>(centroid_data), begin);
    EXPECT_LT(reinterpret_cast<const char*>(centroid_data), end);
  }
  ExpectBitIdentical(*realized->base, *golden.base);
  // The base holds the keepalive: dropping our reference must not free the
  // bytes the stores borrow (ASan proves the negative).
  std::shared_ptr<const OnexBase> base = realized->base;
  realized = Status::Internal("released");
  buffer.reset();
  double sum = 0.0;
  for (const LengthClass& cls : base->length_classes()) {
    for (const double v : cls.store->centroid(0)) sum += v;
  }
  EXPECT_TRUE(sum == sum);  // touched every borrowed byte; no report = pass
}

TEST(ArenaGoldenTest, MaterializedRealizeOwnsItsStorage) {
  const std::string bytes = Encode(BuildGolden());
  Result<RealizedArena> realized = Realize(bytes, nullptr);
  ASSERT_TRUE(realized.ok()) << realized.status().ToString();
  for (const LengthClass& cls : realized->base->length_classes()) {
    EXPECT_FALSE(cls.store->borrowed());
    const char* p = reinterpret_cast<const char*>(cls.store->centroid(0).data());
    EXPECT_TRUE(p < bytes.data() || p >= bytes.data() + bytes.size());
  }
}

TEST(ArenaGoldenTest, EveryTruncationPrefixIsRejected) {
  const std::string golden = Encode(BuildGolden());
  ASSERT_GT(golden.size(), 64u);
  // Every strict prefix — the binary framing (header file_size, section
  // table bounds) must catch all of them before any section is trusted.
  for (std::size_t cut = 0; cut < golden.size(); ++cut) {
    const std::string prefix = golden.substr(0, cut);
    const Result<ArenaView> view = ParseArena(AsBytes(prefix));
    ASSERT_FALSE(view.ok()) << "truncation at byte " << cut << " accepted";
    ASSERT_FALSE(view.status().message().empty());
  }
}

TEST(ArenaGoldenTest, RandomByteFlipsAreRejectedOrInvariantChecked) {
  const std::string golden = Encode(BuildGolden());
  Rng rng(0xDEADBEEF);
  int clean_errors = 0;
  int still_valid = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string corrupt = golden;
    const std::size_t flips = 1 + rng.UniformIndex(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t off = rng.UniformIndex(corrupt.size());
      const char next = static_cast<char>(rng.UniformInt(0, 255));
      if (corrupt[off] == next) {
        corrupt[off] = static_cast<char>(next ^ 0x5a);
      } else {
        corrupt[off] = next;
      }
    }
    Result<RealizedArena> realized = Realize(corrupt, nullptr);
    if (realized.ok()) {
      CheckInvariants(*realized);
      ++still_valid;
    } else {
      EXPECT_FALSE(realized.status().message().empty());
      ++clean_errors;
    }
  }
  // Every byte after the header is covered by the whole-file FNV and the
  // header is field-validated, so essentially every flip must be caught.
  EXPECT_EQ(still_valid, 0) << still_valid << " corrupted arenas accepted";
  EXPECT_EQ(clean_errors, 400);
}

TEST(ArenaGoldenTest, ForeignAndGarbageBytesAreRejected) {
  EXPECT_FALSE(LooksLikeArena(std::string_view("ONEXPREP 1\n")));
  EXPECT_FALSE(LooksLikeArena(std::string_view("")));
  {
    const std::string junk = "GARBAGE GARBAGE GARBAGE GARBAGE GARBAGE "
                             "GARBAGE GARBAGE GARBAGE";
    EXPECT_FALSE(ParseArena(AsBytes(junk)).ok());
  }
  {
    // Correct magic, hostile everything else: must be a structured error.
    std::string fake(4096, '\0');
    const char magic[8] = {'O', 'N', 'E', 'X', 'A', 'R', 'N', 'A'};
    fake.replace(0, 8, magic, 8);
    EXPECT_TRUE(LooksLikeArena(fake));
    EXPECT_FALSE(ParseArena(AsBytes(fake)).ok());
  }
}

}  // namespace
}  // namespace onex
