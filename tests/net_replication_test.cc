/// WAL shipping (DESIGN.md §16): the AppendAt/ApplyReplicated contract that
/// makes a replica bit-identical to its primary, the REPLAPPLY batch codec's
/// corruption rejection, end-to-end hub streaming (catch-up from the WAL
/// file plus live tail) into a real reactor server, and the SendManyTracked
/// per-request completion map a coordinator uses to survive a mid-stream
/// transport death. Runs under ASan and TSan in CI.
#include "onex/net/replication.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "onex/engine/engine.h"
#include "onex/engine/wal.h"
#include "onex/json/json.h"
#include "onex/net/client.h"
#include "onex/net/protocol.h"
#include "onex/net/reactor.h"
#include "onex/net/socket.h"

namespace onex::net {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string WalPath(const std::string& dir, const std::string& dataset) {
  return dir + "/" + SlotDirName(dataset) + "/wal";
}

void ScrubVolatile(json::Value* v) {
  if (v->is_object()) {
    v->mutable_object().erase("elapsed_ms");
    v->mutable_object().erase("build_seconds");
    for (auto& entry : v->mutable_object()) ScrubVolatile(&entry.second);
  } else if (v->is_array()) {
    for (auto& entry : v->mutable_array()) ScrubVolatile(&entry);
  }
}

std::string Scrubbed(json::Value v) {
  ScrubVolatile(&v);
  return v.Dump();
}

json::Value Exec(Engine* engine, Session* session, const std::string& line) {
  Result<Command> cmd = ParseCommandLine(line);
  EXPECT_TRUE(cmd.ok()) << line;
  return ExecuteCommand(engine, session, *cmd);
}

/// One journaled mutation history: what every replication test replays.
const std::vector<std::string>& PrimaryScript() {
  static const std::vector<std::string> script = {
      "GEN s sine num=5 len=32 seed=11",
      "PREPARE s st=0.2 maxlen=16",
      "APPEND s series=x v=0.1,0.2,0.35,0.5,0.4,0.3,0.2,0.1",
      "EXTEND s series=0 points=0.25,0.5,0.75",
  };
  return script;
}

TEST(WalAppendAtTest, PreservesPrimarySeqAndRejectsGaps) {
  const std::string dir = ::testing::TempDir() + "/onex_appendat";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal";
  Result<WalWriter> writer = WalWriter::Create(path, "s", /*sync=*/false);
  ASSERT_TRUE(writer.ok()) << writer.status();

  WalRecord r1 = WalRebuildRecord();
  r1.seq = 1;
  WalRecord r2 = WalEvictRecord();
  r2.seq = 2;
  EXPECT_TRUE(writer->AppendAt(r1).ok());
  EXPECT_TRUE(writer->AppendAt(r2).ok());
  EXPECT_EQ(writer->next_seq(), 3u);

  // A gap means the stream skipped acknowledged history: refuse, do not
  // paper over.
  WalRecord gap = WalRebuildRecord();
  gap.seq = 4;
  const Status s = writer->AppendAt(gap);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // A replayed duplicate is equally a caller bug at this layer (the
  // duplicate filter lives in ApplyReplicated, above the writer).
  WalRecord dup = WalRebuildRecord();
  dup.seq = 2;
  EXPECT_FALSE(writer->AppendAt(dup).ok());

  // The rejects left no partial line behind: the file scans clean with
  // exactly the two accepted records.
  Result<WalScan> scan = ScanWalFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_FALSE(scan->torn_tail);
  std::filesystem::remove_all(dir);
}

TEST(ReplBatchCodecTest, RoundTripsTheExactWalLines) {
  WalRecord a = WalRebuildRecord();
  WalRecord b = WalEvictRecord();
  WalRecord c = WalRegroupRecord({8, 16});
  a.seq = 7;
  b.seq = 8;
  c.seq = 9;
  const std::vector<std::string> lines = {
      EncodeWalRecord(a), EncodeWalRecord(b), EncodeWalRecord(c)};

  const std::string text = EncodeReplApplyText("s", 7, lines);
  const std::size_t newline = text.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string command_line = text.substr(0, newline);
  const std::string blob = text.substr(newline + 1);

  Result<Command> cmd = ParseCommandLine(command_line);
  ASSERT_TRUE(cmd.ok()) << cmd.status();
  EXPECT_EQ(cmd->verb, "REPLAPPLY");
  EXPECT_EQ(blob, lines[0] + lines[1] + lines[2]);

  Result<std::vector<WalRecord>> decoded =
      DecodeWalBatchBlob(blob, Fnv1a64(blob), 7, 3);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].seq, 7u);
  EXPECT_EQ((*decoded)[0].type, WalRecordType::kRebuild);
  EXPECT_EQ((*decoded)[2].seq, 9u);
  EXPECT_EQ((*decoded)[2].lengths, (std::vector<std::size_t>{8, 16}));
}

TEST(ReplBatchCodecTest, RejectsEveryCorruptionWithoutReturningRecords) {
  WalRecord a = WalRebuildRecord();
  WalRecord b = WalEvictRecord();
  a.seq = 3;
  b.seq = 4;
  const std::string la = EncodeWalRecord(a);
  const std::string lb = EncodeWalRecord(b);
  const std::string blob = la + lb;
  const std::uint64_t crc = Fnv1a64(blob);

  // The control: the untouched batch decodes.
  ASSERT_TRUE(DecodeWalBatchBlob(blob, crc, 3, 2).ok());

  // Batch checksum mismatch.
  EXPECT_FALSE(DecodeWalBatchBlob(blob, crc ^ 1, 3, 2).ok());
  // A flipped byte inside a record (batch crc recomputed, so the per-record
  // checksum is what catches it).
  std::string flipped = blob;
  flipped[5] ^= 0x20;
  EXPECT_FALSE(DecodeWalBatchBlob(flipped, Fnv1a64(flipped), 3, 2).ok());
  // Truncation, with the crc honestly recomputed over the truncated bytes.
  const std::string torn = blob.substr(0, la.size() + lb.size() / 2);
  EXPECT_FALSE(DecodeWalBatchBlob(torn, Fnv1a64(torn), 3, 2).ok());
  // Count disagrees with the lines present.
  EXPECT_FALSE(DecodeWalBatchBlob(blob, crc, 3, 1).ok());
  EXPECT_FALSE(DecodeWalBatchBlob(blob, crc, 3, 3).ok());
  // Reordered lines: valid records, valid crc, broken contiguity.
  const std::string swapped = lb + la;
  EXPECT_FALSE(DecodeWalBatchBlob(swapped, Fnv1a64(swapped), 3, 2).ok());
  // Duplicated line: seq does not advance.
  const std::string doubled = la + la;
  EXPECT_FALSE(DecodeWalBatchBlob(doubled, Fnv1a64(doubled), 3, 2).ok());
  // First-seq disagrees with the first record.
  EXPECT_FALSE(DecodeWalBatchBlob(blob, crc, 4, 2).ok());
}

TEST(ApplyReplicatedTest, ReplicaIsBitIdenticalToPrimaryAtEveryAckedSeq) {
  const std::string dir_p = ::testing::TempDir() + "/onex_repl_primary";
  const std::string dir_r = ::testing::TempDir() + "/onex_repl_replica";
  std::filesystem::remove_all(dir_p);
  std::filesystem::remove_all(dir_r);

  Engine primary;
  Session psession;
  DurabilityOptions popt;
  popt.dir = dir_p;
  popt.fsync = false;
  ASSERT_TRUE(primary.EnableDurability(popt).ok());

  // Capture the sink feed: the exact records and bytes a hub would ship.
  std::vector<std::pair<std::string, WalRecord>> shipped;
  primary.registry().SetWalSink(
      [&shipped](const std::string& dataset, const WalRecord& record,
                 const std::string& encoded) {
        (void)encoded;
        shipped.emplace_back(dataset, record);
      });
  for (const std::string& line : PrimaryScript()) {
    const json::Value v = Exec(&primary, &psession, line);
    ASSERT_TRUE(v["ok"].as_bool()) << line << ": " << v.Dump();
  }
  primary.registry().SetWalSink(nullptr);
  ASSERT_EQ(shipped.size(), PrimaryScript().size());

  Engine replica;
  Session rsession;
  DurabilityOptions ropt;
  ropt.dir = dir_r;
  ropt.fsync = false;
  ASSERT_TRUE(replica.EnableDurability(ropt).ok());
  for (const auto& [dataset, record] : shipped) {
    ASSERT_TRUE(replica.registry().ApplyReplicated(dataset, record).ok())
        << "seq " << record.seq;
  }

  // Byte-identical journals: the replica's WAL is the primary's WAL.
  EXPECT_EQ(ReadFile(WalPath(dir_p, "s")), ReadFile(WalPath(dir_r, "s")));
  Result<SlotDurability> pd = primary.registry().Durability("s");
  Result<SlotDurability> rd = replica.registry().Durability("s");
  ASSERT_TRUE(pd.ok() && rd.ok());
  EXPECT_EQ(pd->last_seq, rd->last_seq);

  // Same answers, down to the last %.17g digit.
  for (const std::string& query :
       {std::string("MATCH s q=0:2:12"), std::string("KNN s q=1:0:10 k=3"),
        std::string("BATCH s q=0:0:8;2:4:12 k=2"),
        std::string("CATALOG s points=6")}) {
    EXPECT_EQ(Scrubbed(Exec(&primary, &psession, query)),
              Scrubbed(Exec(&replica, &rsession, query)))
        << query;
  }

  // Duplicate delivery (at or below the floor) is OK and installs nothing.
  const std::string before = ReadFile(WalPath(dir_r, "s"));
  ASSERT_TRUE(
      replica.registry().ApplyReplicated("s", shipped.back().second).ok());
  EXPECT_EQ(ReadFile(WalPath(dir_r, "s")), before);
  // A gap is a resubscribe signal, never a silent skip.
  WalRecord future = WalRebuildRecord();
  future.seq = rd->last_seq + 2;
  const Status gap = replica.registry().ApplyReplicated("s", future);
  EXPECT_FALSE(gap.ok());
  EXPECT_EQ(gap.code(), StatusCode::kFailedPrecondition);

  std::filesystem::remove_all(dir_p);
  std::filesystem::remove_all(dir_r);
}

TEST(ReplicationHubTest, CatchesUpFromFileThenStreamsLiveTail) {
  const std::string dir_p = ::testing::TempDir() + "/onex_hub_primary";
  const std::string dir_r = ::testing::TempDir() + "/onex_hub_replica";
  std::filesystem::remove_all(dir_p);
  std::filesystem::remove_all(dir_r);

  // Replica: a durable engine behind a real reactor server — REPLHELLO and
  // REPLAPPLY arrive over the wire and run inline on the reactor thread.
  Engine replica;
  DurabilityOptions ropt;
  ropt.dir = dir_r;
  ropt.fsync = false;
  ASSERT_TRUE(replica.EnableDurability(ropt).ok());
  ReactorServer server(&replica);
  ASSERT_TRUE(server.Start(0).ok());

  Engine primary;
  Session psession;
  DurabilityOptions popt;
  popt.dir = dir_p;
  popt.fsync = false;
  ASSERT_TRUE(primary.EnableDurability(popt).ok());
  // History journaled BEFORE the hub exists: the link must fetch it from
  // the WAL file (catch-up), not from its live queue.
  for (const std::string& line : PrimaryScript()) {
    const json::Value v = Exec(&primary, &psession, line);
    ASSERT_TRUE(v["ok"].as_bool()) << line << ": " << v.Dump();
  }

  ReplicationHub::Options hopt;
  hopt.peers = {"127.0.0.1:" + std::to_string(server.port())};
  ReplicationHub hub(&primary, hopt);
  hub.Start();

  // The live append both subscribes the dataset and rides as the tail.
  const json::Value live =
      Exec(&primary, &psession, "EXTEND s series=1 points=0.6,0.7");
  ASSERT_TRUE(live["ok"].as_bool()) << live.Dump();
  Result<SlotDurability> pd = primary.registry().Durability("s");
  ASSERT_TRUE(pd.ok());
  EXPECT_EQ(hub.AwaitReplication("s", pd->last_seq), 1u);

  // Acked ⇒ bit-identical: journal bytes and answers agree.
  EXPECT_EQ(ReadFile(WalPath(dir_p, "s")), ReadFile(WalPath(dir_r, "s")));
  Session rsession;
  for (const std::string& query :
       {std::string("MATCH s q=0:2:12"), std::string("KNN s q=1:0:10 k=3"),
        std::string("STATS s")}) {
    json::Value a = Exec(&primary, &psession, query);
    json::Value b = Exec(&replica, &rsession, query);
    // Process-local telemetry is not replicated: the replica never served
    // the primary's queries, and drift accounting belongs to the live
    // extend path, not the replicated apply. Everything else must match
    // bit for bit.
    if (query == "STATS s") {
      for (const char* counter : {"queries", "last_max_drift"}) {
        a.mutable_object().erase(counter);
        b.mutable_object().erase(counter);
      }
    }
    EXPECT_EQ(Scrubbed(a), Scrubbed(b)) << query;
  }

  hub.Stop();
  server.Stop();
  std::filesystem::remove_all(dir_p);
  std::filesystem::remove_all(dir_r);
}

/// Answers `answer` responses then drops the connection — the deterministic
/// stand-in for a peer that dies mid-pipeline.
void ServeThenDie(ServerSocket* listener, int answers) {
  Result<Socket> conn = listener->Accept();
  if (!conn.ok()) return;
  LineReader reader(&*conn);
  for (int i = 0; i < answers; ++i) {
    if (!reader.ReadLine().ok()) return;
    if (!conn->SendAll("{\"ok\":true,\"pong\":true}\n").ok()) return;
  }
  conn->Close();
}

TEST(SendManyTrackedTest, MidStreamDeathReportsExactlyTheFinishedRequests) {
  Result<ServerSocket> listener = ServerSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server(ServeThenDie, &*listener, 3);

  Result<OnexClient> client =
      OnexClient::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  std::vector<WireRequest> requests(6);
  for (auto& r : requests) r.command = "PING";
  const SendManyOutcome out = client->SendManyTracked(requests, 6);
  server.join();

  // Three responses landed, then the transport died: the outcome keeps the
  // three and names them — a coordinator retries only the other three.
  EXPECT_FALSE(out.status.ok());
  ASSERT_EQ(out.completed.size(), requests.size());
  ASSERT_EQ(out.responses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(out.completed[i], i < 3) << i;
    if (out.completed[i]) {
      EXPECT_TRUE(out.responses[i].body["ok"].as_bool()) << i;
    }
  }
}

TEST(SendManyTrackedTest, FullSuccessIsOkWithEveryRequestCompleted) {
  Result<ServerSocket> listener = ServerSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server(ServeThenDie, &*listener, 4);

  Result<OnexClient> client =
      OnexClient::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  std::vector<WireRequest> requests(4);
  for (auto& r : requests) r.command = "PING";
  const SendManyOutcome out = client->SendManyTracked(requests, 2);
  server.join();

  EXPECT_TRUE(out.status.ok()) << out.status;
  ASSERT_EQ(out.completed.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(out.completed[i]) << i;
    EXPECT_TRUE(out.responses[i].body["ok"].as_bool()) << i;
  }
}

}  // namespace
}  // namespace onex::net
