#include "onex/common/string_utils.h"

#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace onex {
namespace {

TEST(StringTest, SplitDropsEmptyFields) {
  EXPECT_EQ(SplitString("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("  a\t b "), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitString("").empty());
  EXPECT_TRUE(SplitString("   ").empty());
}

TEST(StringTest, SplitCustomDelims) {
  EXPECT_EQ(SplitString("1,2;3", ",;"),
            (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(SplitString("1,,2", ","), (std::vector<std::string>{"1", "2"}));
}

TEST(StringTest, SplitKeepEmptyPreservesFields) {
  EXPECT_EQ(SplitKeepEmpty("a::b", ':'),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitKeepEmpty(":", ':'), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(SplitKeepEmpty("x", ':'), (std::vector<std::string>{"x"}));
}

TEST(StringTest, Trim) {
  EXPECT_EQ(TrimString("  abc  "), "abc");
  EXPECT_EQ(TrimString("\t\r\nabc"), "abc");
  EXPECT_EQ(TrimString("abc"), "abc");
  EXPECT_EQ(TrimString("   "), "");
  EXPECT_EQ(TrimString(""), "");
}

TEST(StringTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_TRUE(StartsWith("prepare name", "prepare"));
  EXPECT_FALSE(StartsWith("pre", "prepare"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringTest, ParseDoubleAcceptsValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e-3"), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("  42 "), 42.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(StringTest, ParseDoubleRejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
  EXPECT_FALSE(ParseDouble("1.5abc").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_EQ(ParseDouble("x").status().code(), StatusCode::kParseError);
}

TEST(StringTest, ParseIntAcceptsValid) {
  EXPECT_EQ(*ParseInt("17"), 17);
  EXPECT_EQ(*ParseInt("-5"), -5);
  EXPECT_EQ(*ParseInt(" 1000000000000 "), 1000000000000LL);
}

TEST(StringTest, ParseIntRejectsInvalid) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("3.5").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999999").ok());  // overflow
}

TEST(StringTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
  // Long output exceeding any small static buffer.
  const std::string big = StrFormat("%0512d", 1);
  EXPECT_EQ(big.size(), 512u);
}

}  // namespace
}  // namespace onex
