/// Engine batch API crosscheck: SimilaritySearchBatch / KnnBatch fan
/// independent queries across the engine's task pool but must return
/// exactly what the one-at-a-time calls return, in query order.
#include "onex/engine/engine.h"

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "onex/gen/generators.h"

namespace onex {
namespace {

void PrepareEngine(Engine* engine, const char* name,
                   std::uint64_t seed = 3) {
  gen::SineFamilyOptions opt;
  opt.num_series = 8;
  opt.length = 30;
  opt.seed = seed;
  ASSERT_TRUE(engine->LoadDataset(name, gen::MakeSineFamilies(opt)).ok());
  BaseBuildOptions bopt;
  bopt.st = 0.2;
  bopt.min_length = 4;
  bopt.max_length = 14;
  bopt.length_step = 2;
  ASSERT_TRUE(engine->Prepare(name, bopt).ok());
}

std::vector<QuerySpec> MakeQueries() {
  std::vector<QuerySpec> queries;
  for (const auto& [series, start, len] :
       {std::tuple{0u, 0u, 8u}, std::tuple{1u, 3u, 10u},
        std::tuple{2u, 5u, 6u}, std::tuple{5u, 2u, 12u},
        std::tuple{7u, 10u, 9u}}) {
    QuerySpec spec;
    spec.series = series;
    spec.start = start;
    spec.length = len;
    queries.push_back(spec);
  }
  return queries;
}

void ExpectSameMatch(const MatchResult& a, const MatchResult& b) {
  EXPECT_EQ(a.match.ref, b.match.ref);
  EXPECT_EQ(a.match.dtw, b.match.dtw);
  EXPECT_EQ(a.match.normalized_dtw, b.match.normalized_dtw);
  EXPECT_EQ(a.match.path, b.match.path);
  EXPECT_EQ(a.matched_series_name, b.matched_series_name);
  EXPECT_EQ(a.query_values, b.query_values);
  EXPECT_EQ(a.match_values, b.match_values);
  EXPECT_EQ(a.stats.groups_total, b.stats.groups_total);
  EXPECT_EQ(a.stats.member_dtw_evaluations, b.stats.member_dtw_evaluations);
}

TEST(EngineBatchTest, BatchSimilaritySearchMatchesOneAtATimeCalls) {
  Engine engine;
  PrepareEngine(&engine, "batch");
  const std::vector<QuerySpec> queries = MakeQueries();

  Result<std::vector<MatchResult>> batch =
      engine.SimilaritySearchBatch("batch", queries);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), queries.size());

  for (std::size_t i = 0; i < queries.size(); ++i) {
    Result<MatchResult> single = engine.SimilaritySearch("batch", queries[i]);
    ASSERT_TRUE(single.ok());
    ExpectSameMatch(*single, (*batch)[i]);
  }
}

TEST(EngineBatchTest, KnnBatchMatchesOneAtATimeCalls) {
  Engine engine;
  PrepareEngine(&engine, "knnb", 9);
  const std::vector<QuerySpec> queries = MakeQueries();
  constexpr std::size_t kK = 3;

  Result<std::vector<std::vector<MatchResult>>> batch =
      engine.KnnBatch("knnb", queries, kK);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), queries.size());

  for (std::size_t i = 0; i < queries.size(); ++i) {
    Result<std::vector<MatchResult>> single =
        engine.Knn("knnb", queries[i], kK);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ(single->size(), (*batch)[i].size());
    for (std::size_t j = 0; j < single->size(); ++j) {
      ExpectSameMatch((*single)[j], (*batch)[i][j]);
    }
  }
}

TEST(EngineBatchTest, BatchWithIntraQueryParallelismStaysIdentical) {
  Engine engine;
  PrepareEngine(&engine, "nested", 21);
  const std::vector<QuerySpec> queries = MakeQueries();

  QueryOptions serial;
  serial.threads = 1;
  Result<std::vector<MatchResult>> expect =
      engine.SimilaritySearchBatch("nested", queries, serial);
  ASSERT_TRUE(expect.ok());

  // Nested parallelism: the batch fans over the pool AND each query fans
  // its group scan over the same pool.
  QueryOptions par;
  par.threads = 4;
  Result<std::vector<MatchResult>> got =
      engine.SimilaritySearchBatch("nested", queries, par);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(expect->size(), got->size());
  for (std::size_t i = 0; i < expect->size(); ++i) {
    ExpectSameMatch((*expect)[i], (*got)[i]);
  }
}

TEST(EngineBatchTest, EmptyBatchYieldsEmptyResults) {
  Engine engine;
  PrepareEngine(&engine, "empty");
  Result<std::vector<MatchResult>> batch =
      engine.SimilaritySearchBatch("empty", {});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST(EngineBatchTest, BatchFailsFastOnBadQueryOrDataset) {
  Engine engine;
  PrepareEngine(&engine, "errs");
  // Unprepared / unknown dataset.
  EXPECT_FALSE(engine.SimilaritySearchBatch("nope", MakeQueries()).ok());
  // One malformed query poisons the whole batch (documented fail-fast).
  std::vector<QuerySpec> queries = MakeQueries();
  queries[2].series = 999;
  EXPECT_FALSE(engine.SimilaritySearchBatch("errs", queries).ok());
}

}  // namespace
}  // namespace onex
