/// ONEXB binary frame codec: golden wire bytes, roundtrips, incremental
/// truncation, mutation fuzz, and the anti-allocation contract — a header's
/// declared lengths are capped before any body allocation. Run under ASan
/// in CI, same harness style as net_protocol_fuzz_test.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/net/frame.h"

namespace onex::net {
namespace {

/// A representative request frame with every field exercised.
Frame SampleRequest() {
  Frame f;
  f.type = FrameType::kRequest;
  f.flags = 0;
  f.request_id = 0x0102030405060708ull;
  f.text = "PING";
  f.values = {1.5};
  return f;
}

TEST(FrameTest, GoldenEncodeBytes) {
  const std::string wire = EncodeFrame(SampleRequest());
  // 24-byte LE header + "PING" + 1.5 (0x3FF8000000000000).
  const unsigned char expected[] = {
      'O',  'N',  'E',  'X',  'B',         // magic
      0x01,                                // version
      0x01,                                // type = request
      0x00,                                // flags
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // request id LE
      0x04, 0x00, 0x00, 0x00,              // text length
      0x01, 0x00, 0x00, 0x00,              // value count
      'P',  'I',  'N',  'G',               // text
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,  // 1.5 LE float64
  };
  ASSERT_EQ(wire.size(), sizeof(expected));
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(wire[i]), expected[i])
        << "byte " << i;
  }
}

TEST(FrameTest, RoundTripPreservesEveryField) {
  std::vector<Frame> cases;
  cases.push_back(SampleRequest());
  {
    Frame f;  // empty everything
    cases.push_back(f);
  }
  {
    Frame f;
    f.type = FrameType::kResponse;
    f.flags = kFrameFlagError;
    f.request_id = std::numeric_limits<std::uint64_t>::max();
    f.text = "{\"ok\":false,\"error\":\"x\"}";
    cases.push_back(f);
  }
  {
    Frame f;
    f.type = FrameType::kResponse;
    f.request_id = 42;
    f.text = std::string("\0with\0nuls\xff", 11);  // text is bytes, not ASCII
    // Bit-exact value transport, including non-finite and signed zero.
    f.values = {0.0, -0.0, 1e308, -1e-308,
                std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity()};
    cases.push_back(f);
  }
  for (const Frame& f : cases) {
    const std::string wire = EncodeFrame(f);
    const FrameDecodeResult r = DecodeFrame(wire);
    ASSERT_EQ(r.state, FrameDecodeState::kFrame);
    EXPECT_EQ(r.consumed, wire.size());
    EXPECT_EQ(r.frame.type, f.type);
    EXPECT_EQ(r.frame.flags, f.flags);
    EXPECT_EQ(r.frame.request_id, f.request_id);
    EXPECT_EQ(r.frame.text, f.text);
    ASSERT_EQ(r.frame.values.size(), f.values.size());
    for (std::size_t i = 0; i < f.values.size(); ++i) {
      EXPECT_EQ(std::signbit(r.frame.values[i]), std::signbit(f.values[i]));
      EXPECT_EQ(r.frame.values[i], f.values[i]) << "value " << i;
    }
  }
  // NaN roundtrips bit-exactly too (== would be false, so check bits).
  Frame nan_frame;
  nan_frame.values = {std::numeric_limits<double>::quiet_NaN()};
  const FrameDecodeResult r = DecodeFrame(EncodeFrame(nan_frame));
  ASSERT_EQ(r.state, FrameDecodeState::kFrame);
  ASSERT_EQ(r.frame.values.size(), 1u);
  EXPECT_TRUE(std::isnan(r.frame.values[0]));
}

TEST(FrameTest, EveryTruncationPrefixAsksForMoreAndConsumesNothing) {
  const std::string wire = EncodeFrame(SampleRequest());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const FrameDecodeResult r =
        DecodeFrame(std::string_view(wire).substr(0, len));
    EXPECT_EQ(r.state, FrameDecodeState::kNeedMore) << "prefix " << len;
    EXPECT_EQ(r.consumed, 0u) << "prefix " << len;
  }
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  Frame a = SampleRequest();
  Frame b;
  b.type = FrameType::kResponse;
  b.request_id = 7;
  b.text = "{\"ok\":true}";
  std::string stream = EncodeFrame(a) + EncodeFrame(b);
  const FrameDecodeResult first = DecodeFrame(stream);
  ASSERT_EQ(first.state, FrameDecodeState::kFrame);
  EXPECT_EQ(first.frame.text, "PING");
  const FrameDecodeResult second =
      DecodeFrame(std::string_view(stream).substr(first.consumed));
  ASSERT_EQ(second.state, FrameDecodeState::kFrame);
  EXPECT_EQ(second.frame.request_id, 7u);
  EXPECT_EQ(first.consumed + second.consumed, stream.size());
}

TEST(FrameTest, BadMagicVersionAndTypeAreErrors) {
  const std::string good = EncodeFrame(SampleRequest());
  for (std::size_t corrupt : {std::size_t{0}, std::size_t{4},
                              std::size_t{5}, std::size_t{6}}) {
    std::string bad = good;
    bad[corrupt] = static_cast<char>(0x7E);
    const FrameDecodeResult r = DecodeFrame(bad);
    EXPECT_EQ(r.state, FrameDecodeState::kError) << "byte " << corrupt;
    EXPECT_FALSE(r.error.ok());
  }
  // Flags byte is opaque, not validated: any value still decodes.
  std::string flags = good;
  flags[7] = static_cast<char>(0xFF);
  EXPECT_EQ(DecodeFrame(flags).state, FrameDecodeState::kFrame);
}

TEST(FrameTest, DeclaredLengthsAreCappedBeforeAllocation) {
  // A 24-byte header claiming a huge body must be rejected from the header
  // alone — kError, not kNeedMore: the decoder may never wait for (or
  // allocate) a body the limits forbid.
  const auto header_claiming = [](std::uint32_t text_len,
                                  std::uint32_t value_count) {
    Frame f;
    std::string wire = EncodeFrame(f);  // valid empty frame
    wire.resize(kFrameHeaderBytes);
    for (int i = 0; i < 4; ++i) {
      wire[16 + i] = static_cast<char>((text_len >> (8 * i)) & 0xff);
      wire[20 + i] = static_cast<char>((value_count >> (8 * i)) & 0xff);
    }
    return wire;
  };
  const FrameLimits limits;  // server-side defaults
  const std::uint32_t big = std::numeric_limits<std::uint32_t>::max();
  for (const auto& [text_len, value_count] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {big, 0},
           {0, big},
           {static_cast<std::uint32_t>(limits.max_text_bytes) + 1, 0},
           {0, static_cast<std::uint32_t>(limits.max_values) + 1},
       }) {
    const FrameDecodeResult r =
        DecodeFrame(header_claiming(text_len, value_count), limits);
    EXPECT_EQ(r.state, FrameDecodeState::kError)
        << "text_len=" << text_len << " value_count=" << value_count;
    EXPECT_EQ(r.consumed, 0u);
  }
  // Declared lengths at the cap are legal (given the body).
  const FrameDecodeResult at_cap = DecodeFrame(
      header_claiming(static_cast<std::uint32_t>(limits.max_text_bytes), 0),
      limits);
  EXPECT_EQ(at_cap.state, FrameDecodeState::kNeedMore);

  // Tighter custom limits bite at their own threshold.
  FrameLimits tiny;
  tiny.max_text_bytes = 8;
  tiny.max_values = 2;
  EXPECT_EQ(DecodeFrame(header_claiming(9, 0), tiny).state,
            FrameDecodeState::kError);
  EXPECT_EQ(DecodeFrame(header_claiming(0, 3), tiny).state,
            FrameDecodeState::kError);
  EXPECT_EQ(DecodeFrame(header_claiming(8, 2), tiny).state,
            FrameDecodeState::kNeedMore);
}

TEST(FrameTest, MutationFuzzNeverCrashesOrOverconsumes) {
  Rng rng(0x0E0B);
  const std::string base = EncodeFrame(SampleRequest());
  for (int iter = 0; iter < 20000; ++iter) {
    std::string wire = base;
    const std::size_t rounds = 1 + rng.UniformIndex(3);
    for (std::size_t r = 0; r < rounds; ++r) {
      switch (rng.UniformIndex(4)) {
        case 0:  // truncate
          wire.resize(rng.UniformIndex(wire.size() + 1));
          break;
        case 1:  // flip a byte
          if (!wire.empty()) {
            wire[rng.UniformIndex(wire.size())] =
                static_cast<char>(rng.UniformInt(0, 255));
          }
          break;
        case 2:  // insert garbage
          wire.insert(rng.UniformIndex(wire.size() + 1),
                      std::string(rng.UniformIndex(16) + 1,
                                  static_cast<char>(rng.UniformInt(0, 255))));
          break;
        default:  // splice two frames
          wire += base.substr(rng.UniformIndex(base.size() + 1));
          break;
      }
    }
    const FrameDecodeResult r = DecodeFrame(wire);
    switch (r.state) {
      case FrameDecodeState::kFrame:
        EXPECT_LE(r.consumed, wire.size());
        EXPECT_GE(r.consumed, kFrameHeaderBytes);
        break;
      case FrameDecodeState::kError:
        EXPECT_FALSE(r.error.ok());
        EXPECT_EQ(r.consumed, 0u);
        break;
      case FrameDecodeState::kNeedMore:
        EXPECT_EQ(r.consumed, 0u);
        break;
    }
  }
}

TEST(FrameTest, RandomBytesNeverDecodeAsAFrame) {
  // 24+ random bytes essentially never start with "ONEXB": the decoder must
  // call them errors (connection-fatal), not wait for more input forever.
  Rng rng(0xA11C);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string junk(kFrameHeaderBytes + rng.UniformIndex(64), '\0');
    for (char& c : junk) c = static_cast<char>(rng.UniformInt(0, 255));
    junk[0] = 'X';  // guarantee the magic mismatch
    const FrameDecodeResult r = DecodeFrame(junk);
    EXPECT_EQ(r.state, FrameDecodeState::kError);
  }
}

}  // namespace
}  // namespace onex::net
