/// The kill-9 fault-injection differential harness (DESIGN.md §16, the
/// cluster's headline proof). For each seeded schedule it boots a real
/// 3-process onexd cluster, drives randomized multi-dataset traffic through
/// one coordinator while an in-process single-node oracle replays the same
/// script, then SIGKILLs the primary owning a dataset at an acked boundary,
/// probes CLUSTER to promote, and asserts that every subsequent answer —
/// mutators, single-dataset queries, datasets= scatter-gather merges, error
/// responses — is bitwise equal (modulo wall-clock fields) to the uncrashed
/// oracle. Sync replication is what makes this sound: a coordinator ack
/// implies every live replica holds the record, so no acknowledged write can
/// vanish with the dead node. ctest gives this suite a 600 s budget.
#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/engine/engine.h"
#include "onex/json/json.h"
#include "onex/net/client.h"
#include "onex/net/cluster.h"
#include "onex/net/protocol.h"
#include "onex/net/socket.h"

namespace onex::net {
namespace {

std::string OnexdPath() {
  // The test binary and onexd land in the same build directory.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./onexd";
  buf[n] = '\0';
  const std::string self(buf);
  const std::size_t slash = self.rfind('/');
  return self.substr(0, slash + 1) + "onexd";
}

/// Asks the kernel for ephemeral ports. The sockets are held open while all
/// three are chosen (so the set is distinct), then released just before the
/// children bind them.
std::vector<std::uint16_t> PickPorts(std::size_t count) {
  std::vector<ServerSocket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < count; ++i) {
    Result<ServerSocket> s = ServerSocket::Listen(0);
    EXPECT_TRUE(s.ok()) << s.status();
    ports.push_back(s->port());
    held.push_back(std::move(*s));
  }
  return ports;
}

void ScrubVolatile(json::Value* v) {
  if (v->is_object()) {
    v->mutable_object().erase("elapsed_ms");
    v->mutable_object().erase("build_seconds");
    for (auto& entry : v->mutable_object()) ScrubVolatile(&entry.second);
  } else if (v->is_array()) {
    for (auto& entry : v->mutable_array()) ScrubVolatile(&entry);
  }
}

std::string Scrubbed(json::Value v) {
  ScrubVolatile(&v);
  return v.Dump();
}

/// One onexd child process plus the bookkeeping to kill -9 it.
struct Node {
  pid_t pid = -1;
  std::uint16_t port = 0;

  void Kill9() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
};

class ClusterProcs {
 public:
  /// Spawns `nodes.size()` onexd processes forming one cluster.
  static ClusterProcs Spawn(const std::vector<std::uint16_t>& ports,
                            const std::string& data_root) {
    std::string csv;
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (i != 0) csv += ',';
      csv += "127.0.0.1:" + std::to_string(ports[i]);
    }
    const std::string binary = OnexdPath();
    ClusterProcs procs;
    for (std::size_t i = 0; i < ports.size(); ++i) {
      const std::string dir = data_root + "/d" + std::to_string(i);
      std::filesystem::create_directories(dir);
      const pid_t pid = ::fork();
      if (pid == 0) {
        // Child: quiet stdout (startup banners), keep stderr for post-
        // mortems in the ctest log.
        if (::freopen("/dev/null", "w", stdout) == nullptr) ::_exit(126);
        const std::string nodes_flag = "--cluster-nodes=" + csv;
        const std::string self_flag = "--cluster-self=" + std::to_string(i);
        const std::string dir_flag = "--data-dir=" + dir;
        ::execl(binary.c_str(), binary.c_str(), nodes_flag.c_str(),
                self_flag.c_str(), dir_flag.c_str(), "--no-fsync",
                static_cast<char*>(nullptr));
        ::_exit(127);  // exec failed
      }
      Node node;
      node.pid = pid;
      node.port = ports[i];
      procs.nodes_.push_back(node);
    }
    return procs;
  }

  ~ClusterProcs() {
    for (Node& node : nodes_) node.Kill9();
  }

  Node& node(std::size_t i) { return nodes_[i]; }

  /// Blocks until every node answers PING (recovery + listener up).
  bool WaitReady() const {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (const Node& node : nodes_) {
      for (;;) {
        Result<OnexClient> client = OnexClient::Connect("127.0.0.1", node.port);
        if (client.ok()) {
          Result<json::Value> pong = client->Call("PING");
          if (pong.ok() && (*pong)["ok"].as_bool()) break;
        }
        if (std::chrono::steady_clock::now() > deadline) return false;
        ::usleep(20 * 1000);
      }
    }
    return true;
  }

 private:
  std::vector<Node> nodes_;
};

/// Plain-HRW owner with every node alive — how the harness picks its victim
/// before any failure exists.
std::size_t InitialOwner(const std::string& dataset, std::size_t n) {
  std::size_t best = 0;
  std::uint64_t best_weight = ClusterNode::HrwWeight(dataset, 0);
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t w = ClusterNode::HrwWeight(dataset, i);
    if (w > best_weight) {
      best_weight = w;
      best = i;
    }
  }
  return best;
}

/// The seeded traffic generator. Commands reference only series 0..4 (GEN
/// makes 5) plus appended names unique per step, so the script is valid —
/// and where it is not (a duplicate append name, say), the error response
/// is part of the differential contract too.
std::string RandomOp(Rng* rng, const std::vector<std::string>& datasets,
                     int step) {
  const std::string& ds = datasets[rng->UniformIndex(datasets.size())];
  auto spec = [&] {
    return std::to_string(rng->UniformIndex(5)) + ":" +
           std::to_string(rng->UniformIndex(8)) + ":" +
           std::to_string(8 + rng->UniformIndex(8));
  };
  auto vals = [&](std::size_t n) {
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 0) out += ',';
      out += std::to_string(rng->UniformInt(-100, 100));
      out += "e-2";
    }
    return out;
  };
  switch (rng->UniformIndex(6)) {
    case 0:
      return "APPEND " + ds + " series=h" + std::to_string(step) +
             " v=" + vals(6 + rng->UniformIndex(4));
    case 1:
      return "EXTEND " + ds + " series=" + std::to_string(rng->UniformIndex(5)) +
             " points=" + vals(1 + rng->UniformIndex(3));
    case 2:
      return "MATCH " + ds + " q=" + spec();
    case 3:
      return "KNN " + ds + " q=" + spec() +
             " k=" + std::to_string(1 + rng->UniformIndex(3));
    case 4: {
      std::string cmd = "BATCH " + ds + " q=" + spec() + ";" + spec() + " k=2";
      return cmd;
    }
    default: {
      // datasets= scatter-gather across shards, merged by the coordinator.
      std::string all;
      for (std::size_t i = 0; i < datasets.size(); ++i) {
        if (i != 0) all += ',';
        all += datasets[i];
      }
      return "KNN datasets=" + all + " q=" + spec() +
             " k=" + std::to_string(2 + rng->UniformIndex(2));
    }
  }
}

class DifferentialRun {
 public:
  DifferentialRun(OnexClient* cluster, Engine* oracle, Session* oracle_session)
      : cluster_(cluster), oracle_(oracle), oracle_session_(oracle_session) {}

  /// Runs one command against both worlds and asserts bitwise equality.
  void Step(const std::string& command) {
    SCOPED_TRACE(command);
    Result<json::Value> cluster_response = cluster_->Call(command);
    ASSERT_TRUE(cluster_response.ok()) << cluster_response.status();
    Result<Command> cmd = ParseCommandLine(command);
    ASSERT_TRUE(cmd.ok());
    const json::Value oracle_response =
        ExecuteCommand(oracle_, oracle_session_, *cmd);
    EXPECT_EQ(Scrubbed(*cluster_response), Scrubbed(oracle_response));
  }

 private:
  OnexClient* cluster_;
  Engine* oracle_;
  Session* oracle_session_;
};

void RunSeededSchedule(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const std::vector<std::string> datasets = {"alpha", "beta", "gamma"};
  const std::string data_root =
      ::testing::TempDir() + "/onex_harness_" + std::to_string(seed);
  std::filesystem::remove_all(data_root);

  const std::vector<std::uint16_t> ports = PickPorts(3);
  ClusterProcs procs = ClusterProcs::Spawn(ports, data_root);
  ASSERT_TRUE(procs.WaitReady()) << "cluster did not come up";

  // The coordinator varies by seed; the victim is the owner of the first
  // dataset not owned by the coordinator (so the kill always severs a
  // remote primary mid-conversation). Shard assignment is pure HRW, so the
  // test computes it without asking the cluster.
  const std::size_t coordinator = seed % 3;
  std::size_t victim = (coordinator + 1) % 3;
  std::string victim_dataset = datasets[0];
  for (const std::string& ds : datasets) {
    const std::size_t owner = InitialOwner(ds, 3);
    if (owner != coordinator) {
      victim = owner;
      victim_dataset = ds;
      break;
    }
  }

  Result<OnexClient> client =
      OnexClient::Connect("127.0.0.1", procs.node(coordinator).port);
  ASSERT_TRUE(client.ok()) << client.status();
  Engine oracle;
  Session oracle_session;
  DifferentialRun diff(&*client, &oracle, &oracle_session);

  // Deterministic bootstrap, then seeded traffic.
  Rng rng(seed * 2654435761u + 1);
  int step = 0;
  for (const std::string& ds : datasets) {
    diff.Step("GEN " + ds + (rng.Bernoulli(0.5) ? " sine" : " walk") +
              " num=5 len=40 seed=" + std::to_string(seed * 10 + step));
    diff.Step("PREPARE " + ds + " st=0.2 maxlen=16");
    ++step;
  }
  for (int i = 0; i < 8; ++i) {
    diff.Step(RandomOp(&rng, datasets, step++));
    if (::testing::Test::HasFatalFailure()) return;
  }

  // kill -9 at an acked boundary: the previous command's response was
  // received, and sync replication means received ⇒ on every live replica.
  procs.node(victim).Kill9();
  // The probe makes the failure detection deterministic: it marks the dead
  // node, runs the promotion sweep, and reports the new topology.
  Result<json::Value> cluster_status = client->Call("CLUSTER");
  ASSERT_TRUE(cluster_status.ok()) << cluster_status.status();
  ASSERT_TRUE((*cluster_status)["ok"].as_bool()) << cluster_status->Dump();
  EXPECT_FALSE(
      (*cluster_status)["nodes"].as_array()[victim]["alive"].as_bool())
      << cluster_status->Dump();

  // Post-promotion traffic MUST start by exercising the dataset whose
  // primary just died — reads from the promoted replica, then a write that
  // continues its journal — before the seeded mix resumes.
  diff.Step("KNN " + victim_dataset + " q=0:0:12 k=2");
  diff.Step("EXTEND " + victim_dataset + " series=2 points=0.5,0.25");
  diff.Step("MATCH " + victim_dataset + " q=1:2:10");
  for (int i = 0; i < 8; ++i) {
    diff.Step(RandomOp(&rng, datasets, step++));
    if (::testing::Test::HasFatalFailure()) return;
  }

  std::filesystem::remove_all(data_root);
}

TEST(ClusterHarnessTest, KillNinePromotionIsBitwiseInvisible) {
  // ≥8 seeded schedules: coordinators, victims, traffic mixes and kill
  // points all vary with the seed.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunSeededSchedule(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace onex::net
