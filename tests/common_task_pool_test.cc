#include "onex/common/task_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace onex {
namespace {

TEST(TaskPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  TaskPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, ParallelForZeroAndOneAreTrivial) {
  TaskPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(TaskPoolTest, MaxConcurrencyOneRunsInline) {
  TaskPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(
      64,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) all_inline = false;
      },
      /*max_concurrency=*/1);
  EXPECT_TRUE(all_inline);
}

TEST(TaskPoolTest, IndexAddressedWritesProduceDeterministicResults) {
  TaskPool pool(8);
  constexpr std::size_t kN = 512;
  std::vector<double> a(kN), b(kN);
  auto fill = [](std::vector<double>* out) {
    return [out](std::size_t i) {
      (*out)[i] = static_cast<double>(i) * 1.5 + 1.0;
    };
  };
  pool.ParallelFor(kN, fill(&a));
  pool.ParallelFor(kN, fill(&b), /*max_concurrency=*/3);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(std::accumulate(a.begin(), a.end(), 0.0),
                   1.5 * (kN * (kN - 1)) / 2.0 + kN);
}

TEST(TaskPoolTest, NestedParallelForDoesNotDeadlock) {
  TaskPool pool(2);  // fewer workers than outer iterations forces nesting
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(TaskPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    TaskPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains the queues
  EXPECT_EQ(ran.load(), 100);
}

TEST(TaskPoolTest, SubmitWakesASleepingWorker) {
  TaskPool pool(1);
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(m);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
}

TEST(TaskPoolTest, SharedPoolIsUsableAndStable) {
  TaskPool& a = TaskPool::Shared();
  TaskPool& b = TaskPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
  std::atomic<int> total{0};
  a.ParallelFor(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(TaskPoolTest, ManyConcurrentParallelForsFromExternalThreads) {
  TaskPool pool(4);
  constexpr int kCallers = 6;
  std::vector<std::thread> callers;
  std::atomic<int> total{0};
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        pool.ParallelFor(50, [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 5 * 50);
}

}  // namespace
}  // namespace onex
