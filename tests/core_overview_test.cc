#include "onex/core/overview.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace onex {
namespace {

OnexBase MakeBase(double st = 0.15) {
  gen::SineFamilyOptions gopt;
  gopt.num_series = 8;
  gopt.length = 18;
  gopt.seed = 77;
  Result<Dataset> norm = Normalize(gen::MakeSineFamilies(gopt),
                                   NormalizationKind::kMinMaxDataset);
  auto ds = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions opt;
  opt.st = st;
  opt.min_length = 6;
  opt.max_length = 10;
  return std::move(OnexBase::Build(ds, opt)).value();
}

TEST(OverviewTest, SortedByCardinalityDescending) {
  const OnexBase base = MakeBase();
  Result<std::vector<OverviewEntry>> entries = BuildOverview(base, {});
  ASSERT_TRUE(entries.ok());
  ASSERT_FALSE(entries->empty());
  for (std::size_t i = 1; i < entries->size(); ++i) {
    EXPECT_GE((*entries)[i - 1].cardinality, (*entries)[i].cardinality);
  }
}

TEST(OverviewTest, IntensityIsNormalizedToTopGroup) {
  const OnexBase base = MakeBase();
  Result<std::vector<OverviewEntry>> entries = BuildOverview(base, {});
  ASSERT_TRUE(entries.ok());
  EXPECT_DOUBLE_EQ(entries->front().intensity, 1.0);
  for (const OverviewEntry& e : *entries) {
    EXPECT_GT(e.intensity, 0.0);
    EXPECT_LE(e.intensity, 1.0);
    EXPECT_NEAR(e.intensity,
                static_cast<double>(e.cardinality) /
                    static_cast<double>(entries->front().cardinality),
                1e-12);
  }
}

TEST(OverviewTest, TopNTruncates) {
  const OnexBase base = MakeBase();
  OverviewOptions opt;
  opt.top_n = 3;
  Result<std::vector<OverviewEntry>> entries = BuildOverview(base, opt);
  ASSERT_TRUE(entries.ok());
  EXPECT_LE(entries->size(), 3u);
  opt.top_n = 0;  // unlimited
  Result<std::vector<OverviewEntry>> all = BuildOverview(base, opt);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), base.TotalGroups());
}

TEST(OverviewTest, LengthFilter) {
  const OnexBase base = MakeBase();
  OverviewOptions opt;
  opt.length = 8;
  opt.top_n = 0;
  Result<std::vector<OverviewEntry>> entries = BuildOverview(base, opt);
  ASSERT_TRUE(entries.ok());
  Result<const LengthClass*> cls = base.FindLengthClass(8);
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(entries->size(), (*cls)->groups.size());
  for (const OverviewEntry& e : *entries) {
    EXPECT_EQ(e.length, 8u);
    EXPECT_EQ(e.representative.size(), 8u);
  }
}

TEST(OverviewTest, UnknownLengthIsNotFound) {
  const OnexBase base = MakeBase();
  OverviewOptions opt;
  opt.length = 999;
  EXPECT_EQ(BuildOverview(base, opt).status().code(), StatusCode::kNotFound);
}

TEST(OverviewTest, RepresentativesCarryGroupShape) {
  const OnexBase base = MakeBase();
  Result<std::vector<OverviewEntry>> entries = BuildOverview(base, {});
  ASSERT_TRUE(entries.ok());
  for (const OverviewEntry& e : *entries) {
    ASSERT_EQ(e.representative.size(), e.length);
    const LengthClass& cls =
        **base.FindLengthClass(e.length);
    ASSERT_LT(e.group_index, cls.groups.size());
    EXPECT_TRUE(std::ranges::equal(e.representative,
                                   cls.groups[e.group_index].centroid()));
    EXPECT_EQ(e.cardinality, cls.groups[e.group_index].size());
  }
}

}  // namespace
}  // namespace onex
