#include "onex/baseline/brute_force.h"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "onex/baseline/ucr_suite.h"
#include "onex/distance/dtw.h"
#include "onex/distance/euclidean.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

Dataset WalksNormalized(std::size_t num = 6, std::size_t len = 18,
                        std::uint64_t seed = 42) {
  gen::RandomWalkOptions opt;
  opt.num_series = num;
  opt.length = len;
  opt.seed = seed;
  return std::move(Normalize(gen::MakeRandomWalks(opt),
                             NormalizationKind::kMinMaxDataset))
      .value();
}

TEST(BruteForceTest, FindsPlantedExactMatch) {
  const Dataset ds = WalksNormalized();
  // The query is a subsequence of the dataset: distance 0 at that ref.
  const std::span<const double> q = ds[2].Slice(4, 8);
  ScanScope scope;
  scope.min_length = 4;
  scope.max_length = 12;
  Result<ScanMatch> m =
      BruteForceBestMatch(ds, q, ScanDistance::kDtw, scope);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->normalized, 0.0, 1e-12);
  Result<ScanMatch> ed =
      BruteForceBestMatch(ds, q, ScanDistance::kEuclidean, scope);
  ASSERT_TRUE(ed.ok());
  EXPECT_NEAR(ed->normalized, 0.0, 1e-12);
  EXPECT_EQ(ed->ref, (SubseqRef{2, 4, 8}));
}

TEST(BruteForceTest, EuclideanScanOnlyConsidersQueryLength) {
  const Dataset ds = WalksNormalized();
  const std::span<const double> q = ds[0].Slice(0, 6);
  ScanScope scope;
  scope.min_length = 4;
  scope.max_length = 12;
  Result<ScanMatch> m =
      BruteForceBestMatch(ds, q, ScanDistance::kEuclidean, scope);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->ref.length, 6u);
}

TEST(BruteForceTest, InvalidInputs) {
  const Dataset ds = WalksNormalized();
  const std::vector<double> q{0.1, 0.2, 0.3};
  EXPECT_FALSE(
      BruteForceBestMatch(Dataset(), q, ScanDistance::kDtw).ok());
  EXPECT_FALSE(BruteForceBestMatch(ds, std::vector<double>{0.5},
                                   ScanDistance::kDtw)
                   .ok());
  ScanScope bad;
  bad.min_length = 0;
  EXPECT_FALSE(BruteForceBestMatch(ds, q, ScanDistance::kDtw, bad).ok());
  bad = ScanScope();
  bad.stride = 0;
  EXPECT_FALSE(BruteForceBestMatch(ds, q, ScanDistance::kDtw, bad).ok());
}

TEST(BruteForceTest, NotFoundWhenScopeExcludesEverything) {
  const Dataset ds = WalksNormalized(3, 10);
  const std::vector<double> q{0.1, 0.2, 0.3};
  ScanScope scope;
  scope.min_length = 50;
  scope.max_length = 60;
  Result<ScanMatch> m = BruteForceBestMatch(ds, q, ScanDistance::kDtw, scope);
  EXPECT_EQ(m.status().code(), StatusCode::kNotFound);
}

TEST(UcrSuiteTest, StatsAccountForEveryCandidate) {
  const Dataset ds = WalksNormalized(5, 16, 9);
  const std::span<const double> q = ds[1].Slice(2, 7);
  UcrSearchOptions opt;
  opt.scope.min_length = 7;
  opt.scope.max_length = 7;
  ScanStats stats;
  Result<ScanMatch> m = UcrBestMatch(ds, q, opt, &stats);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(stats.candidates, ds.CountSubsequences(7, 7));
  EXPECT_EQ(stats.candidates,
            stats.pruned_kim + stats.pruned_keogh +
                stats.pruned_keogh_reversed + stats.abandoned_dtw +
                stats.full_evaluations);
}

TEST(UcrSuiteTest, PruningReducesFullEvaluations) {
  const Dataset ds = WalksNormalized(8, 40, 15);
  const std::span<const double> q = ds[0].Slice(5, 12);
  UcrSearchOptions cascade;
  cascade.scope.min_length = 12;
  cascade.scope.max_length = 12;
  UcrSearchOptions naive = cascade;
  naive.use_lb_kim = false;
  naive.use_lb_keogh = false;
  naive.use_lb_keogh_reversed = false;
  naive.use_early_abandon = false;
  ScanStats with_pruning, without_pruning;
  ASSERT_TRUE(UcrBestMatch(ds, q, cascade, &with_pruning).ok());
  ASSERT_TRUE(UcrBestMatch(ds, q, naive, &without_pruning).ok());
  EXPECT_LT(with_pruning.full_evaluations, without_pruning.full_evaluations);
  EXPECT_EQ(without_pruning.full_evaluations, without_pruning.candidates);
}

TEST(UcrSuiteTest, InvalidInputsMirrorBruteForce) {
  const Dataset ds = WalksNormalized();
  EXPECT_FALSE(UcrBestMatch(Dataset(), std::vector<double>{0.1, 0.2}).ok());
  EXPECT_FALSE(UcrBestMatch(ds, std::vector<double>{0.1}).ok());
  UcrSearchOptions bad;
  bad.scope.length_step = 0;
  EXPECT_FALSE(UcrBestMatch(ds, std::vector<double>{0.1, 0.2}, bad).ok());
}

/// Exactness: the UCR-style cascade must return the brute-force optimum on
/// every dataset, window, and query. Parameter = (seed, window).
class UcrExactnessTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(UcrExactnessTest, MatchesBruteForceAcrossLengths) {
  const auto [seed, window] = GetParam();
  const Dataset ds = WalksNormalized(5, 20, seed);
  Rng rng(seed + 7);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t qlen = 5 + rng.UniformIndex(8);
    const std::size_t series = rng.UniformIndex(ds.size());
    const std::size_t start =
        rng.UniformIndex(ds[series].length() - qlen + 1);
    const std::span<const double> q = ds[series].Slice(start, qlen);

    ScanScope scope;
    scope.min_length = 4;
    scope.max_length = 14;
    UcrSearchOptions opt;
    opt.scope = scope;
    opt.window = window;
    Result<ScanMatch> fast = UcrBestMatch(ds, q, opt);
    Result<ScanMatch> slow =
        BruteForceBestMatch(ds, q, ScanDistance::kDtw, scope, window);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_NEAR(fast->normalized, slow->normalized, 1e-9)
        << "window=" << window << " qlen=" << qlen;
  }
}

TEST_P(UcrExactnessTest, EachFilterAloneIsStillExact) {
  const auto [seed, window] = GetParam();
  const Dataset ds = WalksNormalized(4, 16, seed + 100);
  const std::span<const double> q = ds[0].Slice(3, 8);
  ScanScope scope;
  scope.min_length = 8;
  scope.max_length = 8;
  Result<ScanMatch> truth =
      BruteForceBestMatch(ds, q, ScanDistance::kDtw, scope, window);
  ASSERT_TRUE(truth.ok());

  for (int mask = 0; mask < 16; ++mask) {
    UcrSearchOptions opt;
    opt.scope = scope;
    opt.window = window;
    opt.use_lb_kim = mask & 1;
    opt.use_lb_keogh = mask & 2;
    opt.use_lb_keogh_reversed = mask & 4;
    opt.use_early_abandon = mask & 8;
    Result<ScanMatch> m = UcrBestMatch(ds, q, opt);
    ASSERT_TRUE(m.ok());
    EXPECT_NEAR(m->normalized, truth->normalized, 1e-9) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWindows, UcrExactnessTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(-1, 0, 2, 5)));

}  // namespace
}  // namespace onex
