#include "onex/engine/engine.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "onex/gen/economic_panel.h"
#include "onex/gen/generators.h"
#include "test_util.h"

namespace onex {
namespace {

Dataset SmallSines(std::size_t num = 6, std::size_t len = 18,
                   std::uint64_t seed = 42) {
  gen::SineFamilyOptions opt;
  opt.num_series = num;
  opt.length = len;
  opt.seed = seed;
  return gen::MakeSineFamilies(opt);
}

BaseBuildOptions QuickBuild() {
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

TEST(EngineTest, LoadListDrop) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.LoadDataset("b", SmallSines(4)).ok());
  EXPECT_EQ(engine.ListDatasets(), (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(engine.DropDataset("a").ok());
  EXPECT_EQ(engine.ListDatasets(), (std::vector<std::string>{"b"}));
  EXPECT_EQ(engine.DropDataset("a").code(), StatusCode::kNotFound);
}

TEST(EngineTest, LoadRejectsDuplicatesAndEmpties) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  EXPECT_EQ(engine.LoadDataset("a", SmallSines()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.LoadDataset("", SmallSines()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.LoadDataset("empty", Dataset()).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, GetReturnsSnapshot) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get("a");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->name, "a");
  EXPECT_FALSE((*ds)->prepared());
  EXPECT_EQ(engine.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, QueriesRequirePreparation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  QuerySpec spec;
  spec.series = 0;
  spec.length = 8;
  EXPECT_EQ(engine.SimilaritySearch("a", spec).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Seasonal("a", 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Overview("a").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, PrepareThenSearchEndToEnd) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());

  QuerySpec spec;
  spec.series = 1;
  spec.start = 2;
  spec.length = 8;
  QueryOptions exhaustive;
  exhaustive.exhaustive = true;
  Result<MatchResult> match = engine.SimilaritySearch("a", spec, exhaustive);
  ASSERT_TRUE(match.ok());
  // The query is a base member: perfect match.
  EXPECT_NEAR(match->match.normalized_dtw, 0.0, 1e-9);
  EXPECT_FALSE(match->matched_series_name.empty());
  EXPECT_EQ(match->query_values.size(), 8u);
  EXPECT_EQ(match->match_values.size(), match->match.ref.length);
  EXPECT_GT(match->elapsed_ms, 0.0);
  EXPECT_GT(match->stats.groups_total, 0u);
}

TEST(EngineTest, PrepareIsReentrant) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  Result<std::shared_ptr<const PreparedDataset>> first = engine.Get("a");
  ASSERT_TRUE(first.ok());
  const std::size_t groups_before = (*first)->base->TotalGroups();

  BaseBuildOptions coarse = QuickBuild();
  coarse.st = 1.0;
  ASSERT_TRUE(engine.Prepare("a", coarse).ok());
  Result<std::shared_ptr<const PreparedDataset>> second = engine.Get("a");
  ASSERT_TRUE(second.ok());
  EXPECT_LE((*second)->base->TotalGroups(), groups_before);
  // The first snapshot remains usable (immutable snapshot semantics).
  EXPECT_EQ((*first)->base->TotalGroups(), groups_before);
}

TEST(EngineTest, WholeSeriesQueryWithLengthZero) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  QuerySpec spec;
  spec.series = 0;
  spec.start = 10;
  spec.length = 0;  // rest of the series: 8 points
  Result<MatchResult> match = engine.SimilaritySearch("a", spec);
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->query_values.size(), 8u);
}

TEST(EngineTest, InlineQueryIsNormalizedIntoDatasetSpace) {
  Engine engine;
  Dataset raw = SmallSines();
  ASSERT_TRUE(engine.LoadDataset("a", raw).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());

  // Take raw values of a known subsequence and submit them inline: the
  // engine must normalize them identically and find the same subsequence.
  QuerySpec inline_spec;
  const std::span<const double> raw_vals = raw[2].Slice(3, 8);
  inline_spec.inline_values.assign(raw_vals.begin(), raw_vals.end());
  QueryOptions exhaustive;
  exhaustive.exhaustive = true;
  Result<MatchResult> match =
      engine.SimilaritySearch("a", inline_spec, exhaustive);
  ASSERT_TRUE(match.ok());
  EXPECT_NEAR(match->match.normalized_dtw, 0.0, 1e-9);
}

TEST(EngineTest, CrossDatasetQuery) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("target", SmallSines(6, 18, 1)).ok());
  ASSERT_TRUE(engine.LoadDataset("other", SmallSines(3, 18, 2)).ok());
  ASSERT_TRUE(engine.Prepare("target", QuickBuild()).ok());
  QuerySpec spec;
  spec.dataset = "other";
  spec.series = 0;
  spec.start = 0;
  spec.length = 8;
  Result<MatchResult> match = engine.SimilaritySearch("target", spec);
  ASSERT_TRUE(match.ok());
  EXPECT_LT(match->match.normalized_dtw,
            std::numeric_limits<double>::infinity());
}

TEST(EngineTest, QuerySpecValidation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  QuerySpec bad;
  bad.series = 99;
  EXPECT_EQ(engine.SimilaritySearch("a", bad).status().code(),
            StatusCode::kOutOfRange);
  bad = QuerySpec();
  bad.series = 0;
  bad.start = 100;
  bad.length = 5;
  EXPECT_EQ(engine.SimilaritySearch("a", bad).status().code(),
            StatusCode::kOutOfRange);
  QuerySpec tiny;
  tiny.inline_values = {1.0};
  EXPECT_EQ(engine.SimilaritySearch("a", tiny).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, KnnOrderingAndSize) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines(8, 20)).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  QuerySpec spec;
  spec.series = 0;
  spec.length = 8;
  Result<std::vector<MatchResult>> knn = engine.Knn("a", spec, 4);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 4u);
  for (std::size_t i = 1; i < knn->size(); ++i) {
    EXPECT_LE((*knn)[i - 1].match.normalized_dtw,
              (*knn)[i].match.normalized_dtw);
  }
}

TEST(EngineTest, SeasonalAndOverviewAndThreshold) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines(6, 24, 9)).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());

  Result<std::vector<SeasonalPattern>> seasonal = engine.Seasonal("a", 0);
  ASSERT_TRUE(seasonal.ok());

  Result<std::vector<OverviewEntry>> overview = engine.Overview("a");
  ASSERT_TRUE(overview.ok());
  EXPECT_FALSE(overview->empty());

  Result<ThresholdReport> thresholds = engine.RecommendThresholds("a");
  ASSERT_TRUE(thresholds.ok());
  EXPECT_FALSE(thresholds->recommendations.empty());
  // Prepared dataset: recommendations are in normalized units (<= ~1).
  EXPECT_LT(thresholds->recommendations.back().st, 2.0);
}

TEST(EngineTest, ChartBuildersProduceRenderableData) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  QuerySpec spec;
  spec.series = 0;
  spec.length = 10;
  QueryOptions exhaustive;
  exhaustive.exhaustive = true;
  Result<MatchResult> match = engine.SimilaritySearch("a", spec, exhaustive);
  ASSERT_TRUE(match.ok());

  Result<viz::MultiLineChartData> ml = engine.MatchMultiLineChart("a", *match);
  ASSERT_TRUE(ml.ok());
  EXPECT_EQ(ml->series_a.size(), match->query_values.size());
  EXPECT_FALSE(ml->links.empty());

  Result<viz::RadialChartData> radial = engine.MatchRadialChart("a", *match);
  ASSERT_TRUE(radial.ok());
  EXPECT_EQ(radial->points_a.size(), match->query_values.size());

  Result<viz::ConnectedScatterData> scatter =
      engine.MatchConnectedScatter("a", *match);
  ASSERT_TRUE(scatter.ok());
  // Perfect match: points on the diagonal.
  EXPECT_NEAR(scatter->diagonal_deviation, 0.0, 1e-9);

  Result<viz::SeasonalViewData> seasonal = engine.SeasonalView("a", 0, {});
  ASSERT_TRUE(seasonal.ok());
  EXPECT_EQ(seasonal->series.size(), 18u);
}

TEST(EngineTest, EconomicPanelFindsPlantedPartner) {
  // The demo walkthrough: prepare MATTERS growth rates, query MA, expect the
  // planted partner state as best match.
  Engine engine;
  gen::EconomicPanelOptions gopt;
  gopt.years = 25;
  ASSERT_TRUE(engine.LoadDataset("matters", gen::MakeEconomicPanel(gopt)).ok());
  BaseBuildOptions bopt;
  bopt.st = 0.1;
  bopt.min_length = 6;
  bopt.max_length = 25;
  ASSERT_TRUE(engine.Prepare("matters", bopt).ok());

  Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get("matters");
  ASSERT_TRUE(ds.ok());
  const std::size_t ma = *(*ds)->raw->FindByName("Massachusetts");

  QuerySpec spec;
  spec.series = ma;
  spec.length = 0;  // whole MA series
  // The demo compares whole state series, so pin the searched length to the
  // full horizon (otherwise MA's own overlapping subsequences fill the
  // top-k with trivial self-matches).
  QueryOptions qopt;
  qopt.min_length = gopt.years;
  qopt.max_length = gopt.years;
  qopt.exhaustive = true;
  Result<std::vector<MatchResult>> knn = engine.Knn("matters", spec, 3, qopt);
  ASSERT_TRUE(knn.ok());
  ASSERT_GE(knn->size(), 2u);
  // Best match is MA itself (distance 0); the planted partner follows.
  EXPECT_EQ(knn->front().matched_series_name, "Massachusetts");
  EXPECT_NEAR(knn->front().match.normalized_dtw, 0.0, 1e-9);
  bool saw_partner = false;
  for (const MatchResult& m : *knn) {
    if (m.matched_series_name == gopt.partner_state) saw_partner = true;
  }
  EXPECT_TRUE(saw_partner)
      << "planted partner state not in top-3 matches for MA";
}


TEST(EngineTest, CatalogListsSeriesWithPreviews) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  Result<std::vector<Engine::CatalogEntry>> catalog = engine.Catalog("a", 8);
  ASSERT_TRUE(catalog.ok());
  ASSERT_EQ(catalog->size(), 6u);
  for (const Engine::CatalogEntry& e : *catalog) {
    EXPECT_FALSE(e.series_name.empty());
    EXPECT_EQ(e.length, 18u);
    EXPECT_EQ(e.preview.size(), 8u);
  }
  // Works without preparation and validates arguments.
  EXPECT_FALSE(engine.Catalog("a", 0).ok());
  EXPECT_EQ(engine.Catalog("missing").status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, AppendSeriesToUnpreparedDataset) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  Rng rng(3);
  ASSERT_TRUE(
      engine.AppendSeries("a", TimeSeries("new", testing::SmoothSeries(&rng, 18)))
          .ok());
  Result<std::shared_ptr<const PreparedDataset>> ds = engine.Get("a");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->raw->size(), 7u);
  EXPECT_FALSE((*ds)->prepared());
}

TEST(EngineTest, AppendSeriesToPreparedDatasetUpdatesBase) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  Result<std::shared_ptr<const PreparedDataset>> before = engine.Get("a");
  ASSERT_TRUE(before.ok());
  const std::size_t members_before = (*before)->base->TotalMembers();

  Rng rng(5);
  ASSERT_TRUE(engine
                  .AppendSeries("a", TimeSeries("new",
                                                testing::SmoothSeries(&rng, 18)))
                  .ok());
  Result<std::shared_ptr<const PreparedDataset>> after = engine.Get("a");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE((*after)->prepared());
  EXPECT_EQ((*after)->raw->size(), 7u);
  EXPECT_EQ((*after)->normalized->size(), 7u);
  EXPECT_GT((*after)->base->TotalMembers(), members_before);
  // Old snapshot untouched.
  EXPECT_EQ((*before)->base->TotalMembers(), members_before);

  // The appended series is immediately queryable.
  QuerySpec spec;
  spec.series = 6;
  spec.start = 0;
  spec.length = 8;
  QueryOptions exhaustive;
  exhaustive.exhaustive = true;
  Result<MatchResult> match = engine.SimilaritySearch("a", spec, exhaustive);
  ASSERT_TRUE(match.ok());
  EXPECT_NEAR(match->match.normalized_dtw, 0.0, 1e-9);
}

TEST(EngineTest, AppendSeriesValidation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  EXPECT_EQ(engine.AppendSeries("missing", TimeSeries("x", {1.0, 2.0})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.AppendSeries("a", TimeSeries("x", {1.0})).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, SaveAndLoadPreparedRoundTrip) {
  const std::string path = ::testing::TempDir() + "/onex_prepared_test.onex";
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  ASSERT_TRUE(engine.SavePrepared("a", path).ok());

  Engine fresh;
  ASSERT_TRUE(fresh.LoadPrepared("b", path).ok());
  Result<std::shared_ptr<const PreparedDataset>> loaded = fresh.Get("b");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->prepared());

  // Same groups, same answers as the original engine.
  Result<std::shared_ptr<const PreparedDataset>> orig = engine.Get("a");
  ASSERT_TRUE(orig.ok());
  EXPECT_EQ((*loaded)->base->TotalGroups(), (*orig)->base->TotalGroups());
  EXPECT_EQ((*loaded)->base->TotalMembers(), (*orig)->base->TotalMembers());

  QuerySpec spec;
  spec.series = 2;
  spec.start = 1;
  spec.length = 8;
  QueryOptions exhaustive;
  exhaustive.exhaustive = true;
  Result<MatchResult> m0 = engine.SimilaritySearch("a", spec, exhaustive);
  Result<MatchResult> m1 = fresh.SimilaritySearch("b", spec, exhaustive);
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m0->match.ref, m1->match.ref);
  EXPECT_NEAR(m0->match.normalized_dtw, m1->match.normalized_dtw, 1e-12);

  // Raw values are recovered through the stored normalization parameters.
  const Dataset raw = SmallSines();
  for (std::size_t i = 0; i < raw[0].length(); ++i) {
    EXPECT_NEAR((*(*loaded)->raw)[0][i], raw[0][i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(EngineTest, SavePreparedRequiresPreparation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  EXPECT_EQ(engine.SavePrepared("a", "/tmp/whatever.onex").code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, LoadPreparedRejectsCollisionsAndGarbage) {
  const std::string path = ::testing::TempDir() + "/onex_prepared_test2.onex";
  Engine engine;
  ASSERT_TRUE(engine.LoadDataset("a", SmallSines()).ok());
  ASSERT_TRUE(engine.Prepare("a", QuickBuild()).ok());
  ASSERT_TRUE(engine.SavePrepared("a", path).ok());
  EXPECT_EQ(engine.LoadPrepared("a", path).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.LoadPrepared("x", "/no/such/file").code(),
            StatusCode::kIoError);

  const std::string junk = ::testing::TempDir() + "/onex_junk.onex";
  {
    std::ofstream out(junk);
    out << "this is not a prepared dataset\n";
  }
  EXPECT_EQ(engine.LoadPrepared("y", junk).code(), StatusCode::kParseError);
  std::remove(path.c_str());
  std::remove(junk.c_str());
}

}  // namespace
}  // namespace onex
