#include "onex/net/server.h"

#include <sys/socket.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/net/client.h"

namespace onex::net {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OnexServer>(&engine_);
    ASSERT_TRUE(server_->Start(0).ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  OnexClient Connect() {
    Result<OnexClient> client = OnexClient::Connect("127.0.0.1",
                                                    server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  Engine engine_;
  std::unique_ptr<OnexServer> server_;
};

TEST_F(ServerTest, PingRoundTrip) {
  OnexClient client = Connect();
  Result<json::Value> v = client.Call("PING");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE((*v)["ok"].as_bool());
  EXPECT_TRUE((*v)["pong"].as_bool());
}

TEST_F(ServerTest, FullAnalyticsSessionOverTheWire) {
  OnexClient client = Connect();
  Result<json::Value> v = client.Call("GEN demo sine num=6 len=18 seed=5");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*v)["ok"].as_bool()) << v->Dump();

  v = client.Call("PREPARE demo st=0.2 maxlen=10");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*v)["ok"].as_bool()) << v->Dump();
  EXPECT_GT((*v)["groups"].as_number(), 0.0);

  v = client.Call("MATCH demo q=0:2:8 exhaustive=1");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*v)["ok"].as_bool()) << v->Dump();
  EXPECT_NEAR((*v)["match"]["normalized_dtw"].as_number(), 0.0, 1e-9);

  v = client.Call("OVERVIEW demo top=4");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*v)["ok"].as_bool());
  EXPECT_LE((*v)["overview"]["cells"].as_array().size(), 4u);
}

TEST_F(ServerTest, MalformedCommandGetsErrorNotDisconnect) {
  OnexClient client = Connect();
  Result<json::Value> v = client.Call("NOT_A_COMMAND foo");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE((*v)["ok"].as_bool());
  // Session continues after the error.
  v = client.Call("PING");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)["ok"].as_bool());
}

TEST_F(ServerTest, EmptyLinesAreIgnored) {
  OnexClient client = Connect();
  // A blank line produces no response; the next command still works.
  Result<json::Value> v = client.Call("\nPING");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)["pong"].as_bool());
}

TEST_F(ServerTest, MultipleSequentialClients) {
  for (int round = 0; round < 3; ++round) {
    OnexClient client = Connect();
    Result<json::Value> v = client.Call("PING");
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE((*v)["ok"].as_bool());
    client.Close();
  }
}

TEST_F(ServerTest, ConcurrentClientsShareTheEngine) {
  // One client loads; others see the dataset: a shared server-side session
  // like the demo's.
  OnexClient loader = Connect();
  Result<json::Value> v = loader.Call("GEN shared walk num=4 len=12");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*v)["ok"].as_bool());

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  // char, not bool: vector<bool> packs bits, and concurrent writers to
  // adjacent bits share a word (a real data race TSan rejects).
  std::vector<char> results(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &results] {
      Result<OnexClient> client =
          OnexClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) return;
      Result<json::Value> r = client->Call("LIST");
      if (r.ok() && (*r)["ok"].as_bool() &&
          (*r)["datasets"].as_array().size() == 1) {
        results[static_cast<std::size_t>(c)] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(results[static_cast<std::size_t>(c)], 1) << "client " << c;
  }
}

TEST_F(ServerTest, MultiDatasetDashboardSession) {
  // One connection drives two datasets — the dashboard shape the registry
  // exists for (DESIGN.md §11).
  OnexClient client = Connect();
  ASSERT_TRUE((*client.Call("GEN rates sine num=5 len=16 seed=2"))["ok"]
                  .as_bool());
  ASSERT_TRUE((*client.Call("GEN loads walk num=5 len=16 seed=3"))["ok"]
                  .as_bool());
  ASSERT_TRUE((*client.Call("PREPARE rates st=0.2 maxlen=8"))["ok"]
                  .as_bool());
  ASSERT_TRUE((*client.Call("PREPARE dataset=loads st=0.25 maxlen=8"))["ok"]
                  .as_bool());

  Result<json::Value> v = client.Call("DATASETS");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*v)["ok"].as_bool()) << v->Dump();
  ASSERT_EQ((*v)["datasets"].as_array().size(), 2u);
  for (const json::Value& row : (*v)["datasets"].as_array()) {
    EXPECT_TRUE(row["prepared"].as_bool()) << row.Dump();
  }

  // USE routes bare queries; dataset= overrides per command.
  ASSERT_TRUE((*client.Call("USE rates"))["ok"].as_bool());
  v = client.Call("MATCH q=0:2:8");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)["ok"].as_bool()) << v->Dump();
  v = client.Call("MATCH dataset=loads q=0:2:8");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)["ok"].as_bool()) << v->Dump();
}

TEST_F(ServerTest, StreamingExtendSessionOverTheWire) {
  // The tail-a-live-feed loop (DESIGN.md §12): prepare once, stream EXTEND
  // frames as points arrive, watch DRIFT, query the fresh tail — all on one
  // connection.
  OnexClient client = Connect();
  ASSERT_TRUE((*client.Call("GEN live sine num=5 len=16 seed=9"))["ok"]
                  .as_bool());
  ASSERT_TRUE((*client.Call("PREPARE live st=0.2 maxlen=10"))["ok"]
                  .as_bool());
  ASSERT_TRUE((*client.Call("USE live"))["ok"].as_bool());

  std::size_t expected_len = 16;
  for (int tick = 0; tick < 3; ++tick) {
    Result<json::Value> v =
        client.Call("EXTEND series=2 points=0.42,0.44,0.40");
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE((*v)["ok"].as_bool()) << v->Dump();
    expected_len += 3;
    EXPECT_DOUBLE_EQ((*v)["length"].as_number(),
                     static_cast<double>(expected_len));
    EXPECT_GT((*v)["new_members"].as_number(), 0.0);
  }

  Result<json::Value> drift = client.Call("DRIFT");
  ASSERT_TRUE(drift.ok());
  ASSERT_TRUE((*drift)["ok"].as_bool()) << drift->Dump();
  EXPECT_TRUE((*drift)["prepared"].as_bool());
  EXPECT_FALSE((*drift)["classes"].as_array().empty());

  // The newest tail is searchable exactly.
  Result<json::Value> m = client.Call("MATCH q=2:17:8 exhaustive=1");
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)["ok"].as_bool()) << m->Dump();
  EXPECT_NEAR((*m)["match"]["normalized_dtw"].as_number(), 0.0, 1e-9);

  // And STATS reflects the grown collection plus maintenance counters.
  Result<json::Value> stats = client.Call("STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE((*stats)["ok"].as_bool());
  EXPECT_DOUBLE_EQ((*stats)["max_length"].as_number(), 25.0);
  EXPECT_TRUE((*stats)["last_max_drift"].is_number());
}

TEST_F(ServerTest, ExtendRacesRepreparationWithoutLostWrites) {
  // EXTEND-vs-PREPARE over the wire: one connection streams tails while
  // another re-prepares the same dataset. Every acknowledged EXTEND must
  // survive (the conditional-install loop retries on lost races), and the
  // final collection length must equal the seed plus every appended point.
  OnexClient setup = Connect();
  ASSERT_TRUE((*setup.Call("GEN live sine num=4 len=14 seed=4"))["ok"]
                  .as_bool());
  ASSERT_TRUE((*setup.Call("PREPARE live st=0.2 maxlen=8"))["ok"].as_bool());

  constexpr int kTicks = 10;
  std::atomic<int> extend_failures{0};
  std::thread extender([this, &extend_failures] {
    Result<OnexClient> client =
        OnexClient::Connect("127.0.0.1", server_->port());
    if (!client.ok()) {
      extend_failures.fetch_add(kTicks);
      return;
    }
    for (int i = 0; i < kTicks; ++i) {
      Result<json::Value> v =
          client->Call("EXTEND live series=0 points=0.5,0.6");
      if (!v.ok() || !(*v)["ok"].as_bool()) extend_failures.fetch_add(1);
    }
  });
  std::thread preparer([this] {
    Result<OnexClient> client =
        OnexClient::Connect("127.0.0.1", server_->port());
    if (!client.ok()) return;
    for (int i = 0; i < 4; ++i) {
      // Alternate thresholds so each PREPARE really rebuilds.
      (void)client->Call(i % 2 == 0 ? "PREPARE live st=0.25 maxlen=8"
                                    : "PREPARE live st=0.2 maxlen=8");
    }
  });
  extender.join();
  preparer.join();

  EXPECT_EQ(extend_failures.load(), 0);
  Result<json::Value> stats = setup.Call("STATS live");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE((*stats)["ok"].as_bool()) << stats->Dump();
  // Series 0 started at 14 and gained 2 points per acknowledged tick.
  EXPECT_DOUBLE_EQ((*stats)["max_length"].as_number(),
                   static_cast<double>(14 + 2 * kTicks));
  // The surviving base covers the grown space consistently.
  Result<json::Value> match = setup.Call("MATCH live q=0:26:8 exhaustive=1");
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE((*match)["ok"].as_bool()) << match->Dump();
}

TEST_F(ServerTest, UseStateIsPerConnection) {
  OnexClient first = Connect();
  ASSERT_TRUE((*first.Call("GEN a sine num=4 len=16"))["ok"].as_bool());
  ASSERT_TRUE((*first.Call("PREPARE a st=0.2 maxlen=8"))["ok"].as_bool());
  ASSERT_TRUE((*first.Call("USE a"))["ok"].as_bool());
  ASSERT_TRUE((*first.Call("MATCH q=0:2:8"))["ok"].as_bool());

  // A second connection shares the engine but not the session default.
  OnexClient second = Connect();
  Result<json::Value> v = second.Call("MATCH q=0:2:8");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE((*v)["ok"].as_bool());
  EXPECT_EQ((*v)["code"].as_string(), "InvalidArgument");
  // But it can name the dataset explicitly.
  v = second.Call("MATCH a q=0:2:8");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)["ok"].as_bool()) << v->Dump();
}

TEST_F(ServerTest, QuitClosesTheConnection) {
  OnexClient client = Connect();
  Result<json::Value> v = client.Call("QUIT");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)["bye"].as_bool());
  // Further calls fail: the server hung up.
  Result<json::Value> after = client.Call("PING");
  EXPECT_FALSE(after.ok());
}

TEST_F(ServerTest, StopUnblocksConnectedClients) {
  OnexClient client = Connect();
  ASSERT_TRUE(client.Call("PING").ok());
  server_->Stop();
  // The stopped server must not accept new connections.
  Result<OnexClient> late = OnexClient::Connect("127.0.0.1", server_->port());
  if (late.ok()) {
    EXPECT_FALSE(late->Call("PING").ok());
  }
}

TEST_F(ServerTest, DoubleStartFails) {
  EXPECT_EQ(server_->Start(0).code(), StatusCode::kFailedPrecondition);
}

TEST(ServerLifecycleTest, StopWithoutStartIsSafe) {
  Engine engine;
  OnexServer server(&engine);
  server.Stop();  // no-op
  SUCCEED();
}

TEST(ServerLifecycleTest, RestartAfterStop) {
  Engine engine;
  OnexServer server(&engine);
  ASSERT_TRUE(server.Start(0).ok());
  const std::uint16_t old_port = server.port();
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  (void)old_port;
  Result<OnexClient> client = OnexClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Call("PING").ok());
  server.Stop();
}

TEST(LineReaderTest, UnterminatedFloodHitsTheCapNotMemory) {
  // A peer streaming bytes with no newline must get an error once the
  // per-line cap is hit — the buffer must not grow without bound
  // (protocol.h's anti-allocation contract).
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket writer(fds[0]);
  Socket receiver(fds[1]);
  LineReader reader(&receiver, /*max_line_bytes=*/64u << 10);

  std::thread feeder([&writer] {
    const std::string chunk(64u << 10, 'A');
    (void)writer.SendAll(chunk);  // reader consumes this past the cap
    (void)writer.SendAll(chunk);  // parks in the kernel buffer
  });
  const Result<std::string> line = reader.ReadLine();
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kIoError);
  feeder.join();
}

TEST(LineReaderTest, LineWithinTheCapStillParses) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket writer(fds[0]);
  Socket receiver(fds[1]);
  LineReader reader(&receiver, /*max_line_bytes=*/64u << 10);
  const std::string payload(32u << 10, 'B');
  ASSERT_TRUE(writer.SendAll(payload + "\n").ok());
  const Result<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, payload);
}

/// End-to-end restart (DESIGN.md §13): drive a full session against a
/// durable server, stop it, start a NEW engine on the same data dir,
/// reconnect, and get byte-identical query answers — the paper's
/// interactive loop surviving the server.
TEST(ServerRestartTest, DurableServerAnswersIdenticallyAfterRestart) {
  const std::string dir = ::testing::TempDir() + "/onex_server_restart";
  std::filesystem::remove_all(dir);
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = false;

  const std::vector<std::string> battery = {
      "MATCH demo q=0:2:8",
      "KNN demo q=1:0:6 k=3",
      "KNN demo q=2:3:8 k=2 exhaustive=1",
      "STATS demo",
      "DRIFT demo",
      "CATALOG demo points=6",
  };
  auto run_battery = [&battery](OnexClient& client) {
    std::vector<std::string> out;
    for (const std::string& line : battery) {
      Result<json::Value> v = client.Call(line);
      EXPECT_TRUE(v.ok()) << line;
      if (!v.ok()) continue;
      EXPECT_TRUE((*v)["ok"].as_bool()) << line << ": " << v->Dump();
      // Scrub wall-clock and process-lifetime telemetry before comparing:
      // elapsed_ms measures this call, "checkpoints" counts checkpoints
      // performed by this process. Everything else must match exactly.
      std::string filtered = std::move(v)->Dump();
      for (const char* key : {"\"elapsed_ms\":", "\"checkpoints\":"}) {
        std::string next;
        std::size_t pos = 0;
        while (pos < filtered.size()) {
          const std::size_t hit = filtered.find(key, pos);
          if (hit == std::string::npos) {
            next += filtered.substr(pos);
            break;
          }
          next += filtered.substr(pos, hit - pos);
          std::size_t end = filtered.find_first_of(",}", hit);
          if (end != std::string::npos && filtered[end] == ',') ++end;
          pos = end == std::string::npos ? filtered.size() : end;
        }
        filtered = std::move(next);
      }
      out.push_back(std::move(filtered));
    }
    return out;
  };

  std::vector<std::string> before;
  {
    Engine engine;
    ASSERT_TRUE(engine.EnableDurability(durability).ok());
    OnexServer server(&engine);
    ASSERT_TRUE(server.Start(0).ok());
    Result<OnexClient> client =
        OnexClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    for (const char* line : {
             "GEN demo sine num=6 len=18 seed=5",
             "PREPARE demo st=0.2 maxlen=10",
             "EXTEND demo series=0 points=0.5,0.6,0.7",
             "APPEND demo v=0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8",
             "CHECKPOINT demo",
             "EXTEND demo series=1 points=0.15,0.25",
         }) {
      Result<json::Value> v = client->Call(line);
      ASSERT_TRUE(v.ok()) << line;
      ASSERT_TRUE((*v)["ok"].as_bool()) << line << ": " << v->Dump();
    }
    before = run_battery(*client);
    // STATS over the wire reports durability.
    Result<json::Value> stats = client->Call("STATS demo");
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE((*stats)["durable"].as_bool());
    server.Stop();
  }

  // A NEW engine on the same data dir: recovery, then identical answers.
  {
    Engine engine;
    ASSERT_TRUE(engine.EnableDurability(durability).ok());
    OnexServer server(&engine);
    ASSERT_TRUE(server.Start(0).ok());
    Result<OnexClient> client =
        OnexClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    const std::vector<std::string> after = run_battery(*client);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i], after[i]) << "battery line: " << battery[i];
    }
    server.Stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(ClientTest, ConnectToClosedPortFails) {
  // Port 1 on loopback is essentially never listening.
  Result<OnexClient> client = OnexClient::Connect("127.0.0.1", 1);
  EXPECT_FALSE(client.ok());
}

TEST(ClientTest, BadAddressFails) {
  Result<Socket> sock = ConnectTcp("not-an-ip", 80);
  EXPECT_FALSE(sock.ok());
  EXPECT_EQ(sock.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace onex::net
