#include "onex/distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/distance/euclidean.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a, 1), 0.0);
}

TEST(DtwTest, KnownSmallExample) {
  // [0,1] vs [0,0,1]: the warp repeats the 0; perfect alignment.
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 0.0);
}

TEST(DtwTest, KnownNonZeroExample) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{1.0, 1.0};
  // Diagonal path: two unit costs -> sqrt(2).
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), std::sqrt(2.0));
}

TEST(DtwTest, ShiftedSpikeAlignsUnderWarping) {
  // The same spike at different offsets: DTW nearly zero, ED large.
  std::vector<double> a(20, 0.0), b(20, 0.0);
  a[5] = 1.0;
  b[12] = 1.0;
  EXPECT_LT(DtwDistance(a, b), 1e-9);
  EXPECT_GT(Euclidean(a, b), 1.0);
}

TEST(DtwTest, EmptyInputIsInfinite) {
  const std::vector<double> empty;
  const std::vector<double> a{1.0, 2.0};
  EXPECT_TRUE(std::isinf(DtwDistance(empty, a)));
  EXPECT_TRUE(std::isinf(DtwDistance(a, empty)));
  EXPECT_TRUE(std::isinf(NormalizedDtwDistance(empty, empty)));
}

TEST(DtwTest, SinglePointPairs) {
  const std::vector<double> a{2.0};
  const std::vector<double> b{5.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 3.0);
  const std::vector<double> c{1.0, 3.0};
  // One point vs two: both of c's points align with a's single point.
  EXPECT_DOUBLE_EQ(DtwDistance(a, c), std::sqrt(1.0 + 1.0));
}

TEST(DtwTest, EffectiveWindowWidensForSkewedLengths) {
  EXPECT_EQ(EffectiveWindow(10, 10, 3), 3);
  EXPECT_EQ(EffectiveWindow(10, 20, 3), 10);
  EXPECT_EQ(EffectiveWindow(20, 10, 0), 10);
  EXPECT_EQ(EffectiveWindow(10, 10, -1), kNoWindow);
}

TEST(DtwTest, WindowZeroOnEqualLengthsIsEuclidean) {
  // Band 0 admits only the diagonal: DTW == ED.
  Rng rng(99);
  const std::vector<double> a = testing::RandomSeries(&rng, 24);
  const std::vector<double> b = testing::RandomSeries(&rng, 24);
  EXPECT_NEAR(DtwDistance(a, b, 0), Euclidean(a, b), 1e-9);
}

TEST(DtwTest, BandedDistanceAlwaysFinite) {
  // Even with tiny windows and skewed lengths the widened band keeps the
  // corner reachable.
  Rng rng(7);
  const std::vector<double> a = testing::RandomSeries(&rng, 5);
  const std::vector<double> b = testing::RandomSeries(&rng, 37);
  EXPECT_TRUE(std::isfinite(DtwDistance(a, b, 0)));
  EXPECT_TRUE(std::isfinite(DtwDistance(a, b, 1)));
}

TEST(DtwTest, EarlyAbandonNegativeCutoffNeverAbandons) {
  Rng rng(3);
  const std::vector<double> a = testing::RandomSeries(&rng, 16);
  const std::vector<double> b = testing::RandomSeries(&rng, 16);
  EXPECT_DOUBLE_EQ(DtwDistanceEarlyAbandon(a, b, -1.0), DtwDistance(a, b));
}

TEST(DtwTest, EarlyAbandonAboveTrueDistanceIsExact) {
  Rng rng(4);
  const std::vector<double> a = testing::RandomSeries(&rng, 20);
  const std::vector<double> b = testing::RandomSeries(&rng, 20);
  const double exact = DtwDistance(a, b);
  EXPECT_DOUBLE_EQ(DtwDistanceEarlyAbandon(a, b, exact * 1.01 + 0.01), exact);
}

TEST(DtwTest, EarlyAbandonBelowTrueDistanceAbandons) {
  const std::vector<double> a(16, 0.0);
  const std::vector<double> b(16, 10.0);
  const double exact = DtwDistance(a, b);
  EXPECT_TRUE(std::isinf(DtwDistanceEarlyAbandon(a, b, exact * 0.5)));
}

TEST(DtwPathTest, PathForIdenticalSeriesIsDiagonal) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const DtwAlignment al = DtwWithPath(a, a);
  EXPECT_DOUBLE_EQ(al.distance, 0.0);
  ASSERT_EQ(al.path.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(al.path[k].first, k);
    EXPECT_EQ(al.path[k].second, k);
  }
}

TEST(DtwPathTest, EmptyInputsYieldEmptyPath) {
  const std::vector<double> empty;
  const DtwAlignment al = DtwWithPath(empty, empty);
  EXPECT_TRUE(std::isinf(al.distance));
  EXPECT_TRUE(al.path.empty());
}

class DtwPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtwPropertyTest, Symmetry) {
  Rng rng(GetParam());
  const std::vector<double> a =
      testing::RandomSeries(&rng, 2 + rng.UniformIndex(30));
  const std::vector<double> b =
      testing::RandomSeries(&rng, 2 + rng.UniformIndex(30));
  EXPECT_NEAR(DtwDistance(a, b), DtwDistance(b, a), 1e-9);
}

TEST_P(DtwPropertyTest, BoundedAboveByEuclideanOnEqualLengths) {
  // The core inequality the ONEX base construction rests on (DESIGN.md §5).
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.UniformIndex(40);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  EXPECT_LE(DtwDistance(a, b), Euclidean(a, b) + 1e-9);
  EXPECT_LE(NormalizedDtwDistance(a, b), NormalizedEuclidean(a, b) + 1e-9);
}

TEST_P(DtwPropertyTest, WideningTheBandNeverIncreasesDistance) {
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.UniformIndex(24);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  double prev = DtwDistance(a, b, 0);
  for (int w = 1; w <= static_cast<int>(n); w += 3) {
    const double cur = DtwDistance(a, b, w);
    EXPECT_LE(cur, prev + 1e-9) << "window " << w;
    prev = cur;
  }
  EXPECT_NEAR(DtwDistance(a, b, static_cast<int>(n)), DtwDistance(a, b), 1e-9);
}

TEST_P(DtwPropertyTest, PathIsValidAndCostMatchesDistance) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.UniformIndex(25);
  const std::size_t m = 2 + rng.UniformIndex(25);
  const std::vector<double> a = testing::SmoothSeries(&rng, n);
  const std::vector<double> b = testing::SmoothSeries(&rng, m);
  const DtwAlignment al = DtwWithPath(a, b);
  ASSERT_TRUE(IsValidWarpingPath(al.path, n, m));
  EXPECT_NEAR(WarpingPathCost(a, b, al.path), al.distance, 1e-9);
  EXPECT_NEAR(al.distance, DtwDistance(a, b), 1e-9);
}

TEST_P(DtwPropertyTest, BandedPathRespectsBand) {
  Rng rng(GetParam());
  const std::size_t n = 6 + rng.UniformIndex(20);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  const int w = 2;
  const DtwAlignment al = DtwWithPath(a, b, w);
  ASSERT_TRUE(IsValidWarpingPath(al.path, n, n));
  for (const auto& [i, j] : al.path) {
    EXPECT_LE(std::abs(static_cast<long long>(i) - static_cast<long long>(j)),
              w);
  }
  EXPECT_NEAR(al.distance, DtwDistance(a, b, w), 1e-9);
}

TEST_P(DtwPropertyTest, BridgingBoundWithMultiplicity) {
  // DTW(q,s) <= DTW(q,r) + sqrt(M) * ED(r,s): the ED->DTW triangle bound the
  // ONEX exploration model is built on (DESIGN.md §5).
  Rng rng(GetParam());
  const std::size_t qn = 4 + rng.UniformIndex(16);
  const std::size_t rn = 4 + rng.UniformIndex(16);
  const std::vector<double> q = testing::SmoothSeries(&rng, qn);
  const std::vector<double> r = testing::SmoothSeries(&rng, rn);
  std::vector<double> s = r;  // member within a small ED ball of r
  for (double& v : s) v += rng.Uniform(-0.05, 0.05);

  const DtwAlignment qr = DtwWithPath(q, r);
  const std::size_t mult = MaxSecondIndexMultiplicity(qr.path);
  const double bound = qr.distance +
                       std::sqrt(static_cast<double>(mult)) * Euclidean(r, s);
  EXPECT_LE(DtwDistance(q, s), bound + 1e-9);
}

TEST_P(DtwPropertyTest, NormalizedDtwMatchesDefinition) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.UniformIndex(20);
  const std::size_t m = 2 + rng.UniformIndex(20);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, m);
  EXPECT_NEAR(
      NormalizedDtwDistance(a, b),
      DtwDistance(a, b) / std::sqrt(static_cast<double>(std::max(n, m))),
      1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace onex
