#include "onex/viz/svg_export.h"

#include <cstddef>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "onex/distance/dtw.h"

namespace onex::viz {
namespace {

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

MultiLineChartData SampleMultiLine() {
  const std::vector<double> a{0.0, 1.0, 2.0, 1.0};
  const std::vector<double> b{0.0, 0.0, 1.0, 2.0, 1.0};
  return BuildMultiLineChart("query", a, "match", b, DtwWithPath(a, b).path);
}

TEST(SvgMultiLineTest, ContainsTracesAndLinks) {
  const MultiLineChartData data = SampleMultiLine();
  const std::string svg = RenderSvgMultiLine(data);
  EXPECT_EQ(svg.substr(0, 4), "<svg");
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Two polylines (one per series) and one dashed line per warped link.
  EXPECT_EQ(CountOccurrences(svg, "<polyline"), 2u);
  EXPECT_EQ(CountOccurrences(svg, "stroke-dasharray=\"2,3\""),
            data.links.size());
  // Series names appear as labels.
  EXPECT_NE(svg.find(">query<"), std::string::npos);
  EXPECT_NE(svg.find(">match<"), std::string::npos);
}

TEST(SvgMultiLineTest, CustomColorsAndSize) {
  SvgOptions opt;
  opt.width = 200;
  opt.height = 100;
  opt.color_a = "#ff0000";
  const std::string svg = RenderSvgMultiLine(SampleMultiLine(), opt);
  EXPECT_NE(svg.find("width=\"200\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"100\""), std::string::npos);
  EXPECT_NE(svg.find("#ff0000"), std::string::npos);
}

TEST(SvgRadialTest, ClosedTracesInsideReferenceCircle) {
  const std::vector<double> a{1.0, 2.0, 3.0, 2.0};
  const RadialChartData data = BuildRadialChart("a", a, "b", a);
  const std::string svg = RenderSvgRadial(data);
  EXPECT_EQ(CountOccurrences(svg, "<polyline"), 2u);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 1u);  // reference ring
}

TEST(SvgScatterTest, DiagonalPointsAndDeviationLabel) {
  const std::vector<double> a{0.2, 0.4, 0.6};
  const ConnectedScatterData data =
      BuildConnectedScatter("a", a, "b", a, DtwWithPath(a, a).path);
  const std::string svg = RenderSvgConnectedScatter(data);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), data.points.size());
  EXPECT_NE(svg.find("diagonal deviation 0.0000"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray=\"4,4\""), std::string::npos);
}

TEST(SvgSeasonalTest, BandsPerOccurrenceWithAlternatingColors) {
  SeasonalPattern p;
  p.length = 4;
  p.occurrences = {{0, 0, 4}, {0, 8, 4}, {0, 16, 4}};
  p.representative = {0.0, 1.0, 1.0, 0.0};
  const SeasonalViewData data =
      BuildSeasonalView("hh", std::vector<double>(24, 0.5), {p});
  SvgOptions opt;
  const std::string svg = RenderSvgSeasonal(data, opt);
  EXPECT_EQ(CountOccurrences(svg, "<rect"), 3u);
  // Colors alternate: 2 bands of color_a, 1 of color_b.
  EXPECT_EQ(CountOccurrences(svg, opt.color_a), 2u);
  EXPECT_EQ(CountOccurrences(svg, opt.color_b), 1u);
  EXPECT_NE(svg.find(">hh<"), std::string::npos);
}

TEST(SvgOverviewTest, OneCellPerGroupWithIntensityOpacity) {
  OverviewPaneData data;
  data.cells.push_back({6, 10, 1.0, {0.0, 0.5, 1.0, 0.5, 0.0, 0.2}});
  data.cells.push_back({6, 5, 0.5, {1.0, 0.5, 0.0, 0.5, 1.0, 0.8}});
  const std::string svg = RenderSvgOverview(data);
  EXPECT_EQ(CountOccurrences(svg, "<polyline"), 2u);
  EXPECT_NE(svg.find("stroke-opacity=\"1.00\""), std::string::npos);
  EXPECT_NE(svg.find("stroke-opacity=\"0.62\""), std::string::npos);
  EXPECT_NE(svg.find("n=10"), std::string::npos);
}

TEST(HtmlPageTest, WrapsSectionsIntoDocument) {
  const std::string html = WrapHtmlPage(
      "Report <Title>", {{"Section A", "<svg>a</svg>"},
                         {"Section B", "<svg>b</svg>"}});
  EXPECT_EQ(html.substr(0, 15), "<!DOCTYPE html>");
  EXPECT_EQ(CountOccurrences(html, "<section>"), 2u);
  EXPECT_NE(html.find("Section A"), std::string::npos);
  EXPECT_NE(html.find("<svg>b</svg>"), std::string::npos);
  EXPECT_NE(html.find("</body></html>"), std::string::npos);
}

TEST(SvgEdgeCaseTest, DegenerateInputsProduceValidSvg) {
  // Single-point series, empty links, empty patterns: still well-formed.
  const MultiLineChartData tiny =
      BuildMultiLineChart("a", {1.0}, "b", {2.0}, {});
  EXPECT_NE(RenderSvgMultiLine(tiny).find("</svg>"), std::string::npos);

  const SeasonalViewData no_patterns =
      BuildSeasonalView("s", {1.0, 2.0, 3.0}, {});
  EXPECT_NE(RenderSvgSeasonal(no_patterns).find("</svg>"),
            std::string::npos);

  const OverviewPaneData empty_overview;
  EXPECT_NE(RenderSvgOverview(empty_overview).find("</svg>"),
            std::string::npos);

  // Constant series: no division by zero in scaling.
  const MultiLineChartData flat = BuildMultiLineChart(
      "a", std::vector<double>(5, 3.0), "b", std::vector<double>(5, 3.0), {});
  EXPECT_NE(RenderSvgMultiLine(flat).find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace onex::viz
