#include "onex/core/incremental.h"

#include <cstddef>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/core/query_processor.h"
#include "onex/distance/euclidean.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

OnexBase MakeBase(std::size_t num = 6, std::size_t len = 16,
                  CentroidPolicy policy = CentroidPolicy::kRunningMean) {
  gen::SineFamilyOptions gopt;
  gopt.num_series = num;
  gopt.length = len;
  gopt.seed = 42;
  Result<Dataset> norm = Normalize(gen::MakeSineFamilies(gopt),
                                   NormalizationKind::kMinMaxDataset);
  auto ds = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 0;  // dataset max: grows when a longer series arrives
  opt.length_step = 2;
  opt.centroid_policy = policy;
  return std::move(OnexBase::Build(ds, opt)).value();
}

TEST(IncrementalTest, AppendExtendsCoverage) {
  const OnexBase base = MakeBase();
  const std::size_t before_members = base.TotalMembers();

  Rng rng(7);
  TimeSeries fresh("fresh", testing::SmoothSeries(&rng, 16));
  Result<OnexBase> extended = AppendSeries(base, fresh);
  ASSERT_TRUE(extended.ok()) << extended.status();

  EXPECT_EQ(extended->dataset().size(), base.dataset().size() + 1);
  // Every subsequence of the extended dataset (per scoping) is a member.
  EXPECT_EQ(extended->TotalMembers(),
            extended->dataset().CountSubsequences(4, 16, 2, 1));
  EXPECT_GT(extended->TotalMembers(), before_members);

  // Membership is still a partition.
  std::set<SubseqRef> seen;
  for (const LengthClass& cls : extended->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        EXPECT_TRUE(seen.insert(ref).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), extended->TotalMembers());
}

TEST(IncrementalTest, OriginalBaseIsUntouched) {
  const OnexBase base = MakeBase();
  const std::size_t groups_before = base.TotalGroups();
  const std::size_t members_before = base.TotalMembers();
  Rng rng(11);
  Result<OnexBase> extended =
      AppendSeries(base, TimeSeries("x", testing::SmoothSeries(&rng, 16)));
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(base.TotalGroups(), groups_before);
  EXPECT_EQ(base.TotalMembers(), members_before);
  EXPECT_EQ(base.dataset().size(), 6u);
}

TEST(IncrementalTest, LongerSeriesCreatesNewLengthClasses) {
  const OnexBase base = MakeBase();  // max length 16
  EXPECT_FALSE(base.FindLengthClass(20).ok());
  Rng rng(13);
  Result<OnexBase> extended =
      AppendSeries(base, TimeSeries("long", testing::SmoothSeries(&rng, 20)));
  ASSERT_TRUE(extended.ok());
  // New classes for lengths 18 and 20 (step 2), holding only the new series.
  Result<const LengthClass*> cls20 = extended->FindLengthClass(20);
  ASSERT_TRUE(cls20.ok());
  for (const SimilarityGroup& g : (*cls20)->groups) {
    for (const SubseqRef& ref : g.members()) {
      EXPECT_EQ(ref.series, 6u);
    }
  }
  // Length classes remain sorted.
  std::size_t prev = 0;
  for (const LengthClass& cls : extended->length_classes()) {
    EXPECT_GT(cls.length, prev);
    prev = cls.length;
  }
}

TEST(IncrementalTest, FixedLeaderInvariantHoldsAfterAppend) {
  const OnexBase base = MakeBase(6, 16, CentroidPolicy::kFixedLeader);
  Rng rng(17);
  Result<OnexBase> extended =
      AppendSeries(base, TimeSeries("y", testing::SmoothSeries(&rng, 16)));
  ASSERT_TRUE(extended.ok());
  const double radius = extended->options().st / 2.0;
  for (const LengthClass& cls : extended->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        EXPECT_LE(NormalizedEuclidean(g.centroid_span(),
                                      ref.Resolve(extended->dataset())),
                  radius + 1e-9);
      }
    }
  }
}

TEST(IncrementalTest, AppendedSubsequencesAreQueryable) {
  const OnexBase base = MakeBase();
  Rng rng(23);
  const std::vector<double> values = testing::SmoothSeries(&rng, 16);
  Result<OnexBase> extended =
      AppendSeries(base, TimeSeries("target", values));
  ASSERT_TRUE(extended.ok());

  QueryProcessor qp(&*extended);
  // Query a subsequence of the appended series: exhaustive search finds it
  // exactly (distance 0 at its own position).
  const std::span<const double> q =
      extended->dataset()[6].Slice(4, 8);
  QueryOptions opt;
  opt.exhaustive = true;
  Result<BestMatch> m = qp.BestMatchQuery(q, opt);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->normalized_dtw, 0.0, 1e-9);
}

TEST(IncrementalTest, ChainedAppendsMatchDatasetGrowth) {
  OnexBase base = MakeBase();
  Rng rng(29);
  for (int i = 0; i < 3; ++i) {
    Result<OnexBase> next = AppendSeries(
        base, TimeSeries("extra_" + std::to_string(i),
                         testing::SmoothSeries(&rng, 16)));
    ASSERT_TRUE(next.ok());
    base = std::move(next).value();
  }
  EXPECT_EQ(base.dataset().size(), 9u);
  EXPECT_EQ(base.TotalMembers(),
            base.dataset().CountSubsequences(4, 16, 2, 1));
}

TEST(IncrementalTest, RunningMeanCentroidsStayExactMeans) {
  const OnexBase base = MakeBase();
  Rng rng(31);
  Result<OnexBase> extended =
      AppendSeries(base, TimeSeries("z", testing::SmoothSeries(&rng, 16)));
  ASSERT_TRUE(extended.ok());
  for (const LengthClass& cls : extended->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      std::vector<double> mean(cls.length, 0.0);
      for (const SubseqRef& ref : g.members()) {
        const std::span<const double> vals = ref.Resolve(extended->dataset());
        for (std::size_t i = 0; i < cls.length; ++i) mean[i] += vals[i];
      }
      for (double& v : mean) v /= static_cast<double>(g.size());
      for (std::size_t i = 0; i < cls.length; ++i) {
        EXPECT_NEAR(g.centroid()[i], mean[i], 1e-9);
      }
    }
  }
}

TEST(IncrementalTest, RejectsDegenerateSeries) {
  const OnexBase base = MakeBase();
  EXPECT_FALSE(AppendSeries(base, TimeSeries("tiny", {1.0})).ok());
  EXPECT_FALSE(AppendSeries(base, TimeSeries("empty", {})).ok());
}

TEST(IncrementalTest, ShortSeriesOnlyJoinsAdmissibleLengths) {
  const OnexBase base = MakeBase();
  Rng rng(37);
  // A 6-point series participates only in length classes 4 and 6.
  Result<OnexBase> extended =
      AppendSeries(base, TimeSeries("short", testing::SmoothSeries(&rng, 6)));
  ASSERT_TRUE(extended.ok());
  for (const LengthClass& cls : extended->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        if (ref.series == 6) {
          EXPECT_LE(cls.length, 6u);
        }
      }
    }
  }
}

}  // namespace
}  // namespace onex
