#include "onex/distance/kernels.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/distance/dtw.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(LbKimTest, KnownValue) {
  const std::vector<double> a{0.0, 5.0, 1.0};
  const std::vector<double> b{3.0, 9.0, 5.0};
  EXPECT_DOUBLE_EQ(LbKim(a, b), std::sqrt(9.0 + 16.0));
}

TEST(LbKimTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(LbKim(std::vector<double>{}, std::vector<double>{1.0}), 0.0);
}

TEST(LbKimTest, DifferentLengthsStillValid) {
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{0.5, 2.0, 1.5};
  EXPECT_LE(LbKim(a, b), DtwDistance(a, b) + 1e-12);
}

TEST(LbKeoghTest, LengthMismatchReturnsZero) {
  const std::vector<double> q{1.0, 2.0, 3.0};
  const Envelope env = ComputeKeoghEnvelope(q, 1);
  EXPECT_DOUBLE_EQ(LbKeogh(env, std::vector<double>{1.0, 2.0}), 0.0);
}

TEST(LbKeoghTest, CandidateInsideEnvelopeGivesZero) {
  const std::vector<double> q{0.0, 1.0, 0.0, -1.0};
  const Envelope env = ComputeKeoghEnvelope(q, -1);  // global [-1, 1]
  EXPECT_DOUBLE_EQ(LbKeogh(env, std::vector<double>{0.5, -0.5, 0.9, 0.0}),
                   0.0);
}

TEST(LbKeoghTest, EarlyAbandonConsistency) {
  const std::vector<double> q{0.0, 0.0, 0.0, 0.0};
  const Envelope env = ComputeKeoghEnvelope(q, 0);
  const std::vector<double> far{5.0, 5.0, 5.0, 5.0};
  const double exact = LbKeogh(env, far);
  EXPECT_DOUBLE_EQ(exact, 10.0);  // sqrt(4 * 25)
  EXPECT_TRUE(std::isinf(LbKeogh(env, far, 5.0)));   // cutoff below
  EXPECT_DOUBLE_EQ(LbKeogh(env, far, 20.0), exact);  // cutoff above
}

TEST(LbKeoghGroupTest, OverlappingEnvelopesGiveZero) {
  Envelope q_env;
  q_env.lower = {0.0, 0.0};
  q_env.upper = {1.0, 1.0};
  Envelope g_env;
  g_env.lower = {0.5, -1.0};
  g_env.upper = {2.0, 0.5};
  EXPECT_DOUBLE_EQ(LbKeoghGroup(q_env, g_env), 0.0);
}

TEST(LbKeoghGroupTest, DisjointEnvelopesGivePositiveBound) {
  Envelope q_env;
  q_env.lower = {0.0, 0.0};
  q_env.upper = {1.0, 1.0};
  Envelope g_env;
  g_env.lower = {3.0, 3.0};
  g_env.upper = {4.0, 4.0};
  // Each point at least distance 2 -> sqrt(8).
  EXPECT_DOUBLE_EQ(LbKeoghGroup(q_env, g_env), std::sqrt(8.0));
}

TEST(LbKeoghGroupTest, SizeMismatchReturnsZero) {
  Envelope q_env;
  q_env.lower = {0.0};
  q_env.upper = {1.0};
  Envelope g_env;
  g_env.lower = {0.0, 0.0};
  g_env.upper = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(LbKeoghGroup(q_env, g_env), 0.0);
}

/// Admissibility sweeps: every lower bound must stay below the true banded
/// DTW on random inputs. Parameter = (seed, window).
class LowerBoundPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(LowerBoundPropertyTest, LbKimAdmissible) {
  const auto [seed, window] = GetParam();
  Rng rng(seed);
  const std::size_t n = 2 + rng.UniformIndex(30);
  const std::size_t m = 2 + rng.UniformIndex(30);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, m);
  EXPECT_LE(LbKim(a, b), DtwDistance(a, b, window) + 1e-9);
}

TEST_P(LowerBoundPropertyTest, LbKeoghAdmissibleForBandedDtw) {
  const auto [seed, window] = GetParam();
  Rng rng(seed + 500);
  const std::size_t n = 2 + rng.UniformIndex(40);
  const std::vector<double> q = testing::RandomSeries(&rng, n);
  const std::vector<double> c = testing::RandomSeries(&rng, n);
  const int eff = window < 0 ? -1 : EffectiveWindow(n, n, window);
  const Envelope env = ComputeKeoghEnvelope(q, eff);
  EXPECT_LE(LbKeogh(env, c), DtwDistance(q, c, window) + 1e-9)
      << "n=" << n << " window=" << window;
}

TEST_P(LowerBoundPropertyTest, GroupBoundAdmissibleForEveryMember) {
  const auto [seed, window] = GetParam();
  Rng rng(seed + 900);
  const std::size_t n = 2 + rng.UniformIndex(24);
  const std::vector<double> q = testing::RandomSeries(&rng, n);
  const int eff = window < 0 ? -1 : EffectiveWindow(n, n, window);
  const Envelope q_env = ComputeKeoghEnvelope(q, eff);

  // A synthetic group: perturbed copies of one shape.
  const std::vector<double> center = testing::RandomSeries(&rng, n);
  Envelope g_env;
  std::vector<std::vector<double>> members;
  for (int k = 0; k < 6; ++k) {
    std::vector<double> m = center;
    for (double& v : m) v += rng.Uniform(-0.2, 0.2);
    AccumulateEnvelope(&g_env, m);
    members.push_back(std::move(m));
  }
  const double bound = LbKeoghGroup(q_env, g_env);
  for (const std::vector<double>& m : members) {
    EXPECT_LE(bound, DtwDistance(q, m, window) + 1e-9);
  }
}

TEST_P(LowerBoundPropertyTest, GroupBoundNeverExceedsMemberKeogh) {
  // The group bound relaxes the member bound; verify the dominance that
  // makes it safe to test the group before its members.
  const auto [seed, window] = GetParam();
  Rng rng(seed + 1300);
  const std::size_t n = 2 + rng.UniformIndex(24);
  const std::vector<double> q = testing::RandomSeries(&rng, n);
  const int eff = window < 0 ? -1 : EffectiveWindow(n, n, window);
  const Envelope q_env = ComputeKeoghEnvelope(q, eff);
  Envelope g_env;
  std::vector<std::vector<double>> members;
  for (int k = 0; k < 4; ++k) {
    std::vector<double> m = testing::RandomSeries(&rng, n);
    AccumulateEnvelope(&g_env, m);
    members.push_back(std::move(m));
  }
  const double group_bound = LbKeoghGroup(q_env, g_env);
  for (const std::vector<double>& m : members) {
    EXPECT_LE(group_bound, LbKeogh(q_env, m) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWindows, LowerBoundPropertyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(-1, 0, 1, 3, 8)));

}  // namespace
}  // namespace onex
