/// ReactorServer: the epoll serving path end-to-end over real sockets —
/// text-session parity with the legacy thread-per-connection server, BIN
/// negotiation and text/binary response equivalence, pipelined out-of-order
/// completion by request id, deadline-expired queries, slow-reader
/// backpressure disconnects, mid-request disconnects, and METRICS sanity.
/// Runs under ASan and TSan in CI.
#include "onex/net/reactor.h"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/json/json.h"
#include "onex/net/client.h"
#include "onex/net/frame.h"
#include "onex/net/metrics.h"
#include "onex/net/server.h"
#include "onex/net/socket.h"

namespace onex::net {
namespace {

/// Strips fields that legitimately differ between two executions of the
/// same command (wall-clock timings). Everything else must be identical.
void ScrubVolatile(json::Value* v) {
  if (v->is_object()) {
    v->mutable_object().erase("elapsed_ms");
    v->mutable_object().erase("build_seconds");
    v->mutable_object().erase("uptime_s");
    for (auto& entry : v->mutable_object()) ScrubVolatile(&entry.second);
  } else if (v->is_array()) {
    for (auto& entry : v->mutable_array()) ScrubVolatile(&entry);
  }
}

std::string Scrubbed(json::Value v) {
  ScrubVolatile(&v);
  return v.Dump();
}

/// The session script both parity tests replay: every protocol area with a
/// deterministic response (seeded GEN, exhaustive and cascade MATCH, KNN,
/// BATCH, errors, catalog/overview reports).
std::vector<std::string> SessionScript() {
  return {
      "PING",
      "GEN demo sine num=6 len=24 seed=5",
      "PREPARE demo st=0.2 maxlen=12",
      "USE demo",
      "STATS",
      "MATCH q=0:2:8",
      "MATCH q=0:2:8 exhaustive=1",
      "KNN q=1:0:10 k=3",
      "BATCH q=0:0:8;1:2:8 k=2",
      "OVERVIEW top=4",
      "CATALOG points=6",
      "SEASONAL series=0 length=8",
      "ANOMALY top=4 minpts=2",
      "CHANGEPOINT series=0 hazard=0.05 maxrun=32 last=16",
      "MOTIF top=3 discords=2",
      "FORECAST series=1 horizon=4 k=2",
      "FORECAST series=1 horizon=3 method=seasonal period=6",
      "ANOMALY eps=nan",
      "FORECAST series=0 horizon=99999999",
      "NOT_A_COMMAND foo",
      "MATCH q=999:0:8",
      "LIST",
      "DATASETS",
  };
}

class ReactorTest : public ::testing::Test {
 protected:
  void StartServer(ReactorOptions options = {}) {
    server_ = std::make_unique<ReactorServer>(&engine_, options);
    ASSERT_TRUE(server_->Start(0).ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  OnexClient Connect() {
    Result<OnexClient> client =
        OnexClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  Engine engine_;
  std::unique_ptr<ReactorServer> server_;
};

TEST_F(ReactorTest, TextSessionMatchesLegacyServerByteForByte) {
  StartServer();
  Engine legacy_engine;
  OnexServer legacy(&legacy_engine);
  ASSERT_TRUE(legacy.Start(0).ok());

  OnexClient reactor_client = Connect();
  Result<OnexClient> legacy_client =
      OnexClient::Connect("127.0.0.1", legacy.port());
  ASSERT_TRUE(legacy_client.ok());

  for (const std::string& line : SessionScript()) {
    Result<json::Value> a = reactor_client.Call(line);
    Result<json::Value> b = legacy_client->Call(line);
    ASSERT_TRUE(a.ok()) << line << ": " << a.status();
    ASSERT_TRUE(b.ok()) << line << ": " << b.status();
    EXPECT_EQ(Scrubbed(*a), Scrubbed(*b)) << line;
  }
  legacy.Stop();
}

TEST_F(ReactorTest, BinaryResponsesAreByteIdenticalToText) {
  StartServer();
  // Separate engines: the script contains mutators (GEN), which would
  // collide if both dialects replayed it against shared state.
  Engine bin_engine;
  ReactorServer bin_server(&bin_engine);
  ASSERT_TRUE(bin_server.Start(0).ok());

  OnexClient text_client = Connect();
  Result<OnexClient> bin_connected =
      OnexClient::Connect("127.0.0.1", bin_server.port());
  ASSERT_TRUE(bin_connected.ok());
  OnexClient bin_client = std::move(bin_connected).value();
  ASSERT_TRUE(bin_client.UpgradeBinary().ok());
  ASSERT_TRUE(bin_client.binary());

  for (const std::string& line : SessionScript()) {
    Result<json::Value> t = text_client.Call(line);
    Result<json::Value> b = bin_client.Call(line);
    ASSERT_TRUE(t.ok()) << line << ": " << t.status();
    ASSERT_TRUE(b.ok()) << line << ": " << b.status();
    // The JSON body is identical across dialects; the frame only adds the
    // raw value section around it.
    EXPECT_EQ(Scrubbed(*t), Scrubbed(*b)) << line;
  }
  bin_server.Stop();
}

TEST_F(ReactorTest, BinaryMatchCarriesValuesSlicedByMatchLength) {
  StartServer();
  OnexClient client = Connect();
  ASSERT_TRUE(client.Call("GEN demo sine num=4 len=24 seed=3").ok());
  ASSERT_TRUE(client.Call("PREPARE demo st=0.2 maxlen=12").ok());
  ASSERT_TRUE(client.UpgradeBinary().ok());

  WireRequest knn;
  knn.command = "KNN demo q=0:0:10 k=3";
  Result<WireResponse> r = client.CallWire(knn);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->body["ok"].as_bool()) << r->body.Dump();
  const auto& matches = r->body["matches"].as_array();
  ASSERT_FALSE(matches.empty());
  std::size_t expected_values = 0;
  for (const auto& m : matches) {
    expected_values += static_cast<std::size_t>(m["length"].as_number());
  }
  // The frame's value section concatenates each match's normalized values
  // in match order; the per-match "length" fields slice it apart.
  EXPECT_EQ(r->values.size(), expected_values);
}

TEST_F(ReactorTest, PipelinedRequestsMatchByRequestId) {
  StartServer();
  OnexClient client = Connect();
  ASSERT_TRUE(client.Call("GEN demo sine num=8 len=24 seed=9").ok());
  ASSERT_TRUE(client.Call("PREPARE demo st=0.2 maxlen=12").ok());
  ASSERT_TRUE(client.UpgradeBinary().ok());

  // 64 queries, each against a distinct series: if responses were matched
  // to the wrong request the series field would betray it instantly.
  std::vector<WireRequest> requests(64);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].command =
        "MATCH demo q=" + std::to_string(i % 8) + ":0:10 exhaustive=1";
  }
  Result<std::vector<WireResponse>> replies = client.SendMany(requests, 16);
  ASSERT_TRUE(replies.ok()) << replies.status();
  ASSERT_EQ(replies->size(), requests.size());
  for (std::size_t i = 0; i < replies->size(); ++i) {
    const json::Value& body = (*replies)[i].body;
    ASSERT_TRUE(body["ok"].as_bool()) << body.Dump();
    // Exhaustive self-match: the best match for series k's prefix is in
    // series k at offset 0.
    EXPECT_EQ(static_cast<std::size_t>(body["match"]["series"].as_number()),
              i % 8)
        << i;
  }
}

TEST_F(ReactorTest, MutatorsActAsPipelineBarriers) {
  StartServer();
  OnexClient client = Connect();
  ASSERT_TRUE(client.UpgradeBinary().ok());
  // PREPARE (mutator) pipelined ahead of the MATCHes that need its base:
  // the barrier guarantees they see the prepared dataset.
  std::vector<WireRequest> requests;
  requests.push_back({"GEN demo sine num=6 len=24 seed=5", {}});
  requests.push_back({"PREPARE demo st=0.2 maxlen=12", {}});
  for (int i = 0; i < 8; ++i) {
    requests.push_back({"MATCH demo q=0:2:8", {}});
  }
  Result<std::vector<WireResponse>> replies = client.SendMany(requests);
  ASSERT_TRUE(replies.ok()) << replies.status();
  for (std::size_t i = 0; i < replies->size(); ++i) {
    EXPECT_TRUE((*replies)[i].body["ok"].as_bool())
        << i << ": " << (*replies)[i].body.Dump();
  }
  // Read-only requests in one pipelined run execute in any order, so the
  // query count is only observable after the run drains: every MATCH
  // answered means every MATCH executed against the prepared dataset.
  WireRequest stats;
  stats.command = "STATS demo";
  Result<WireResponse> s = client.CallWire(stats);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->body["queries"].as_number(), 8.0) << s->body.Dump();
}

TEST_F(ReactorTest, BinaryAppendAndExtendPayloadsMatchTextOptions) {
  StartServer();
  OnexClient text_client = Connect();
  OnexClient bin_client = Connect();
  ASSERT_TRUE(bin_client.UpgradeBinary().ok());

  // Two identical datasets, one mutated through ASCII options, the other
  // through raw frame payloads. Their states must end up identical.
  for (const char* name : {"ta", "tb"}) {
    Result<json::Value> gen = text_client.Call(
        std::string("GEN ") + name + " sine num=4 len=24 seed=7");
    ASSERT_TRUE(gen.ok() && (*gen)["ok"].as_bool());
    ASSERT_TRUE(text_client.Call(std::string("PREPARE ") + name +
                                 " st=0.2 maxlen=12")
                    .ok());
  }

  Result<json::Value> a =
      text_client.Call("APPEND ta series=x v=0.1,0.2,0.3,0.4,0.5,0.6");
  ASSERT_TRUE(a.ok() && (*a)["ok"].as_bool()) << a->Dump();
  WireRequest append;
  append.command = "APPEND tb series=x";
  append.values = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  Result<WireResponse> b = bin_client.CallWire(append);
  ASSERT_TRUE(b.ok() && b->body["ok"].as_bool()) << b->body.Dump();
  json::Value av = *a, bv = b->body;
  av.mutable_object().erase("dataset");
  bv.mutable_object().erase("dataset");
  EXPECT_EQ(Scrubbed(av), Scrubbed(bv));

  Result<json::Value> ea =
      text_client.Call("EXTEND ta series=0 points=0.25,0.5,0.75");
  ASSERT_TRUE(ea.ok() && (*ea)["ok"].as_bool()) << ea->Dump();
  WireRequest extend;
  extend.command = "EXTEND tb series=0";
  extend.values = {0.25, 0.5, 0.75};
  Result<WireResponse> eb = bin_client.CallWire(extend);
  ASSERT_TRUE(eb.ok() && eb->body["ok"].as_bool()) << eb->body.Dump();
  json::Value eav = *ea, ebv = eb->body;
  eav.mutable_object().erase("dataset");
  ebv.mutable_object().erase("dataset");
  EXPECT_EQ(Scrubbed(eav), Scrubbed(ebv));

  Result<json::Value> sa = text_client.Call("STATS ta");
  Result<json::Value> sb = text_client.Call("STATS tb");
  ASSERT_TRUE(sa.ok() && sb.ok());
  ScrubVolatile(&*sa);
  ScrubVolatile(&*sb);
  sa->mutable_object().erase("dataset");
  sb->mutable_object().erase("dataset");
  EXPECT_EQ(sa->Dump(), sb->Dump());
}

TEST_F(ReactorTest, DeadlineExpiredQueryAnswersDeadlineExceeded) {
  StartServer();
  OnexClient client = Connect();
  ASSERT_TRUE(client.Call("GEN demo walk num=20 len=60 seed=11").ok());
  ASSERT_TRUE(client.UpgradeBinary().ok());

  // The deadline counts from *arrival*. Pipelining the query behind a
  // multi-millisecond PREPARE barrier guarantees its 1 ms budget is spent
  // in the queue, so the first cascade stage boundary cancels it —
  // deterministically, regardless of host speed.
  std::vector<WireRequest> requests;
  requests.push_back({"PREPARE demo st=0.15 minlen=4 maxlen=32", {}});
  requests.push_back({"MATCH demo q=0:0:24 deadline_ms=1", {}});
  requests.push_back({"MATCH demo q=0:0:24", {}});  // no deadline: must work
  Result<std::vector<WireResponse>> replies = client.SendMany(requests);
  ASSERT_TRUE(replies.ok()) << replies.status();
  ASSERT_TRUE((*replies)[0].body["ok"].as_bool());
  const json::Value& expired = (*replies)[1].body;
  EXPECT_FALSE(expired["ok"].as_bool()) << expired.Dump();
  EXPECT_EQ(expired["code"].as_string(), "DeadlineExceeded")
      << expired.Dump();
  EXPECT_TRUE((*replies)[2].body["ok"].as_bool())
      << (*replies)[2].body.Dump();
  EXPECT_GE(server_->metrics().deadline_expired(), 1u);

  // An expired deadline is a per-request error, not a session error.
  Result<json::Value> ping = client.Call("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE((*ping)["ok"].as_bool());
}

TEST_F(ReactorTest, NegativeDeadlineIsInvalidArgument) {
  StartServer();
  OnexClient client = Connect();
  ASSERT_TRUE(client.Call("GEN demo sine num=4 len=24 seed=3").ok());
  ASSERT_TRUE(client.Call("PREPARE demo st=0.2 maxlen=12").ok());
  Result<json::Value> v = client.Call("MATCH demo q=0:0:8 deadline_ms=-5");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE((*v)["ok"].as_bool());
  EXPECT_EQ((*v)["code"].as_string(), "InvalidArgument");
}

TEST_F(ReactorTest, SlowReaderIsDisconnectedAfterGrace) {
  ReactorOptions options;
  options.outbox_high_bytes = 16 << 10;  // trip backpressure fast
  options.outbox_hard_bytes = 64 << 20;
  options.slow_reader_grace_ms = 300;
  StartServer(options);

  {
    OnexClient setup = Connect();
    Result<json::Value> gen = setup.Call("GEN big walk num=200 len=200");
    ASSERT_TRUE(gen.ok() && (*gen)["ok"].as_bool());
  }

  // A raw socket that pipelines hundreds of catalog dumps (~100 KB each)
  // and never reads a byte. Once kernel buffers fill, the outbox jams
  // above the watermark, write progress stops, and the grace expires.
  Result<Socket> raw = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  std::string burst;
  for (int i = 0; i < 400; ++i) burst += "CATALOG big\n";
  ASSERT_TRUE(raw->SendAll(burst).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server_->metrics().slow_reader_disconnects() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server_->metrics().slow_reader_disconnects(), 1u);

  // The server sheds the stalled peer and keeps serving everyone else.
  OnexClient healthy = Connect();
  Result<json::Value> ping = healthy.Call("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE((*ping)["ok"].as_bool());
}

TEST_F(ReactorTest, MidRequestDisconnectCancelsAndSurvives) {
  StartServer();
  {
    OnexClient setup = Connect();
    ASSERT_TRUE(setup.Call("GEN demo walk num=20 len=100 seed=2").ok());
    Result<json::Value> prep = setup.Call("PREPARE demo st=0.15 maxlen=40");
    ASSERT_TRUE(prep.ok() && (*prep)["ok"].as_bool());
  }
  // Fire a pipeline of heavy queries and vanish before any response.
  {
    Result<Socket> raw = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(raw.ok());
    std::string burst;
    for (int i = 0; i < 50; ++i) {
      burst += "KNN demo q=0:0:40 k=5 exhaustive=1\n";
    }
    ASSERT_TRUE(raw->SendAll(burst).ok());
    raw->Close();  // mid-request disconnect
  }
  // The reactor observes the disconnect; in-flight queries cancel at the
  // next cascade boundary and the server keeps answering.
  OnexClient client = Connect();
  Result<json::Value> v = client.Call("MATCH demo q=0:0:16");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)["ok"].as_bool()) << v->Dump();
}

TEST_F(ReactorTest, QuitEndsTheSessionAfterTheByeResponse) {
  StartServer();
  OnexClient client = Connect();
  Result<json::Value> bye = client.Call("QUIT");
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE((*bye)["ok"].as_bool());
  EXPECT_TRUE((*bye)["bye"].as_bool());
  Result<json::Value> after = client.Call("PING");
  EXPECT_FALSE(after.ok());  // connection gone
}

TEST_F(ReactorTest, ThousandIdleConnectionsAndMetricsSanity) {
  StartServer();
  std::vector<Socket> idle;
  idle.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    Result<Socket> s = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(s.ok()) << "connection " << i << ": " << s.status();
    idle.push_back(std::move(*s));
  }
  // Idle connections cost fds, not threads; the serving path stays live.
  OnexClient client = Connect();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->metrics().connections_live() < 1001 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // A request before METRICS: the snapshot is taken before the METRICS
  // request itself is recorded, so a fresh server would report zero.
  Result<json::Value> warm = client.Call("PING");
  ASSERT_TRUE(warm.ok() && (*warm)["ok"].as_bool());
  Result<json::Value> m = client.Call("METRICS");
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)["ok"].as_bool());
  EXPECT_GE((*m)["connections"]["live"].as_number(), 1001.0);
  EXPECT_GE((*m)["connections"]["peak"].as_number(), 1001.0);
  EXPECT_GE((*m)["requests"].as_number(), 1.0);
  EXPECT_TRUE((*m)["verbs"]["METRICS"].is_object() ||
              (*m)["verbs"]["PING"].is_object());

  Result<json::Value> ping = client.Call("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE((*ping)["ok"].as_bool());
}

TEST_F(ReactorTest, MetricsCountVerbsAndLatencies) {
  StartServer();
  OnexClient client = Connect();
  for (int i = 0; i < 10; ++i) {
    Result<json::Value> v = client.Call("PING");
    ASSERT_TRUE(v.ok() && (*v)["ok"].as_bool());
  }
  Result<json::Value> m = client.Call("METRICS");
  ASSERT_TRUE(m.ok());
  const json::Value& ping_stats = (*m)["verbs"]["PING"];
  ASSERT_TRUE(ping_stats.is_object()) << m->Dump();
  EXPECT_EQ(ping_stats["count"].as_number(), 10.0);
  EXPECT_GE(ping_stats["p99_ms"].as_number(),
            ping_stats["p50_ms"].as_number());
  EXPECT_GE((*m)["bytes_in"].as_number(), 10.0 * 5);
  EXPECT_GE((*m)["bytes_out"].as_number(), 10.0 * 10);
}

/// Regression (nearest-rank percentiles): one slow request among many fast
/// ones must surface in the tail. The old floor(p * (count-1)) walk
/// truncated the rank, so p99 of {10 x 2us, 1 x 100ms} reported the 2us
/// bucket and a latency spike was invisible in METRICS.
TEST(ServerMetricsTest, TailPercentilesUseNearestRank) {
  ServerMetrics metrics;
  const std::size_t ping = ServerMetrics::VerbIndex("PING");
  for (int i = 0; i < 10; ++i) {
    metrics.RecordRequest(ping, 0.002, /*deadline_expired=*/false);
  }
  metrics.RecordRequest(ping, 100.0, /*deadline_expired=*/false);

  const json::Value m = metrics.ToJson();
  const json::Value& stats = m["verbs"]["PING"];
  ASSERT_TRUE(stats.is_object()) << m.Dump();
  EXPECT_EQ(stats["count"].as_number(), 11.0);
  // p50 stays in the fast bucket; p99 must land in the 100ms bucket
  // (rank ceil(0.99 * 11) = 11, the slowest sample).
  EXPECT_LT(stats["p50_ms"].as_number(), 1.0);
  EXPECT_GT(stats["p99_ms"].as_number(), 50.0);
  // p95: rank ceil(0.95 * 11) = 11 as well — also the slow sample.
  EXPECT_GT(stats["p95_ms"].as_number(), 50.0);

  // With the tail fattened to 2 of 12, p50 still reports the fast bucket.
  metrics.RecordRequest(ping, 100.0, false);
  const json::Value m2 = metrics.ToJson();
  EXPECT_LT(m2["verbs"]["PING"]["p50_ms"].as_number(), 1.0);
}

/// Regression (zero-traffic percentile walk): before any request completes,
/// METRICS must report requests=0 and an empty verbs object — never a
/// first-bucket-midpoint percentile conjured from an all-zero histogram.
TEST(ServerMetricsTest, NoTrafficReportsNoPercentiles) {
  ServerMetrics metrics;
  const json::Value m = metrics.ToJson();
  EXPECT_EQ(m["requests"].as_number(), 0.0);
  ASSERT_TRUE(m["verbs"].is_object());
  EXPECT_TRUE(m["verbs"].as_object().empty()) << m.Dump();
}

TEST_F(ReactorTest, MetricsBeforeAnyTrafficAreAllZero) {
  StartServer();
  OnexClient client = Connect();
  // The very first request on the server: the snapshot is taken before the
  // METRICS request itself is recorded, so everything reads zero.
  Result<json::Value> m = client.Call("METRICS");
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)["ok"].as_bool());
  EXPECT_EQ((*m)["requests"].as_number(), 0.0);
  EXPECT_EQ((*m)["deadline_expired"].as_number(), 0.0);
  ASSERT_TRUE((*m)["verbs"].is_object());
  EXPECT_TRUE((*m)["verbs"].as_object().empty()) << m->Dump();
}

TEST_F(ReactorTest, StopWithInFlightWorkDrainsCleanly) {
  StartServer();
  OnexClient client = Connect();
  ASSERT_TRUE(client.Call("GEN demo walk num=20 len=100 seed=4").ok());
  // Queue a slow barrier plus queries behind it, then stop mid-flight.
  std::vector<WireRequest> requests;
  requests.push_back({"PREPARE demo st=0.15 maxlen=40", {}});
  for (int i = 0; i < 20; ++i) {
    requests.push_back({"KNN demo q=0:0:40 k=5 exhaustive=1", {}});
  }
  std::string burst;  // fire-and-forget: bypass SendMany's response reads
  for (const WireRequest& r : requests) {
    Frame f;
    f.type = FrameType::kRequest;
    f.request_id = 1;
    f.text = r.command;
    burst += EncodeFrame(f);
  }
  Result<Socket> raw = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  // The BIN line flips the parse boundary; the frames ride the same write.
  ASSERT_TRUE(raw->SendAll("BIN\n" + burst).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Stop();  // must drain executor tasks before returning
  SUCCEED();
}

TEST_F(ReactorTest, TextPipelineStaysInOrderWithoutIds) {
  StartServer();
  OnexClient client = Connect();
  ASSERT_TRUE(client.Call("GEN demo sine num=4 len=24 seed=6").ok());
  ASSERT_TRUE(client.Call("PREPARE demo st=0.2 maxlen=12").ok());
  // Text dialect: SendMany pipelines the writes but responses must come
  // back strictly positional.
  std::vector<WireRequest> requests;
  for (int i = 0; i < 32; ++i) {
    requests.push_back(
        {"MATCH demo q=" + std::to_string(i % 4) + ":0:10 exhaustive=1", {}});
  }
  Result<std::vector<WireResponse>> replies = client.SendMany(requests, 8);
  ASSERT_TRUE(replies.ok()) << replies.status();
  for (std::size_t i = 0; i < replies->size(); ++i) {
    const json::Value& body = (*replies)[i].body;
    ASSERT_TRUE(body["ok"].as_bool()) << body.Dump();
    EXPECT_EQ(static_cast<std::size_t>(body["match"]["series"].as_number()),
              i % 4)
        << i;
  }
}

}  // namespace
}  // namespace onex::net
