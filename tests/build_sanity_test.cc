/// Fast whole-stack smoke test: if the build system or any core layer
/// regresses, this one suite fails in milliseconds before the full matrix
/// runs. Exercises dataset generation -> normalization -> base construction
/// -> the stats invariants every downstream view relies on.
#include <cstddef>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "onex/core/onex_base.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(BuildSanityTest, SmallDatasetProducesValidBase) {
  Result<Dataset> norm =
      Normalize(testing::SmallDataset(), NormalizationKind::kMinMaxDataset);
  ASSERT_TRUE(norm.ok()) << norm.status().ToString();
  auto dataset = std::make_shared<const Dataset>(std::move(norm).value());

  BaseBuildOptions options;
  options.st = 0.2;
  options.min_length = 4;
  options.max_length = 12;

  Result<OnexBase> base = OnexBase::Build(dataset, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  EXPECT_GT(base->TotalGroups(), 0u);
  EXPECT_GT(base->TotalMembers(), 0u);
  EXPECT_LE(base->TotalGroups(), base->TotalMembers());

  // CompactionRatio is groups per subsequence: in (0, 1] whenever members
  // exist, and consistent with the raw stats counters.
  const BaseStats& stats = base->stats();
  const double ratio = stats.CompactionRatio();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);
  EXPECT_DOUBLE_EQ(ratio, static_cast<double>(stats.num_groups) /
                              static_cast<double>(stats.num_subsequences));

  // Every length class must hold at least one group and the per-class
  // member counts must add up to the global counter.
  std::size_t members = 0;
  for (const LengthClass& cls : base->length_classes()) {
    EXPECT_FALSE(cls.groups.empty()) << "empty class at length " << cls.length;
    members += cls.total_members;
  }
  EXPECT_EQ(members, stats.num_subsequences);
}

}  // namespace
}  // namespace onex
