#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "onex/core/onex_base.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace onex {
namespace {

std::shared_ptr<const Dataset> MakeData(std::uint64_t seed) {
  gen::RandomWalkOptions opt;
  opt.num_series = 12;
  opt.length = 40;
  opt.seed = seed;
  Result<Dataset> norm = Normalize(gen::MakeRandomWalks(opt),
                                   NormalizationKind::kMinMaxDataset);
  return std::make_shared<const Dataset>(std::move(norm).value());
}

void ExpectIdentical(const OnexBase& a, const OnexBase& b) {
  ASSERT_EQ(a.length_classes().size(), b.length_classes().size());
  EXPECT_EQ(a.TotalGroups(), b.TotalGroups());
  EXPECT_EQ(a.TotalMembers(), b.TotalMembers());
  EXPECT_EQ(a.stats().repaired_members, b.stats().repaired_members);
  for (std::size_t c = 0; c < a.length_classes().size(); ++c) {
    const LengthClass& ca = a.length_classes()[c];
    const LengthClass& cb = b.length_classes()[c];
    ASSERT_EQ(ca.length, cb.length);
    ASSERT_EQ(ca.groups.size(), cb.groups.size());
    for (std::size_t g = 0; g < ca.groups.size(); ++g) {
      EXPECT_TRUE(std::ranges::equal(ca.groups[g].members(),
                                     cb.groups[g].members()))
          << "length " << ca.length << " group " << g;
      EXPECT_TRUE(std::ranges::equal(ca.groups[g].centroid(),
                                     cb.groups[g].centroid()));
    }
  }
}

class ParallelBuildTest : public ::testing::TestWithParam<CentroidPolicy> {};

TEST_P(ParallelBuildTest, ParallelBuildIsBitIdenticalToSerial) {
  auto ds = MakeData(5);
  BaseBuildOptions serial;
  serial.st = 0.15;
  serial.min_length = 4;
  serial.max_length = 24;
  serial.centroid_policy = GetParam();
  serial.threads = 1;
  BaseBuildOptions parallel = serial;
  parallel.threads = 8;

  Result<OnexBase> a = OnexBase::Build(ds, serial);
  Result<OnexBase> b = OnexBase::Build(ds, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdentical(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(Policies, ParallelBuildTest,
                         ::testing::Values(CentroidPolicy::kFixedLeader,
                                           CentroidPolicy::kRunningMean,
                                           CentroidPolicy::kRunningMeanRepair));

TEST(ParallelBuildTest, HardwareConcurrencyMode) {
  auto ds = MakeData(9);
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 16;
  opt.threads = 0;  // one thread per core
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->TotalMembers(), ds->CountSubsequences(4, 16));
}

TEST(ParallelBuildTest, MoreThreadsThanClassesIsSafe) {
  auto ds = MakeData(13);
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 10;
  opt.max_length = 12;  // only 3 classes
  opt.threads = 16;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->length_classes().size(), 3u);
}

}  // namespace
}  // namespace onex
