#include "onex/ts/paa.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/math_utils.h"
#include "onex/common/random.h"
#include "onex/distance/euclidean.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(PaaTest, ExactDivisionAverages) {
  const std::vector<double> x{1.0, 3.0, 2.0, 4.0, 10.0, 20.0};
  const std::vector<double> paa = Paa(x, 3);
  ASSERT_EQ(paa.size(), 3u);
  EXPECT_DOUBLE_EQ(paa[0], 2.0);
  EXPECT_DOUBLE_EQ(paa[1], 3.0);
  EXPECT_DOUBLE_EQ(paa[2], 15.0);
}

TEST(PaaTest, RaggedDivisionCoversEveryPoint) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> paa = Paa(x, 2);
  ASSERT_EQ(paa.size(), 2u);
  // Segments [0,2) and [2,5).
  EXPECT_DOUBLE_EQ(paa[0], 1.5);
  EXPECT_DOUBLE_EQ(paa[1], 4.0);
}

TEST(PaaTest, DegenerateInputs) {
  EXPECT_TRUE(Paa(std::vector<double>{}, 4).empty());
  EXPECT_TRUE(Paa(std::vector<double>{1.0, 2.0}, 0).empty());
  // m >= n: identity.
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(Paa(x, 3), x);
  EXPECT_EQ(Paa(x, 10), x);
}

TEST(PaaTest, ConstantSeriesStaysConstant) {
  const std::vector<double> x(17, 4.5);
  for (double v : Paa(x, 5)) EXPECT_DOUBLE_EQ(v, 4.5);
}

TEST(PaaTest, GlobalMeanPreservedOnExactDivision) {
  Rng rng(3);
  const std::vector<double> x = testing::RandomSeries(&rng, 32);
  const std::vector<double> paa = Paa(x, 8);  // 32 / 8 exact
  EXPECT_NEAR(Mean(paa), Mean(x), 1e-12);
}

TEST(PaaTest, LowerBoundSizeMismatchIsInfinite) {
  EXPECT_TRUE(std::isinf(PaaLowerBound(std::vector<double>{1.0},
                                       std::vector<double>{1.0, 2.0}, 8)));
  EXPECT_TRUE(std::isinf(
      PaaLowerBound(std::vector<double>{}, std::vector<double>{}, 8)));
}

class PaaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaaPropertyTest, LowerBoundsEuclideanOnExactDivision) {
  Rng rng(GetParam());
  // n divisible by m: the classic bound is exact-form.
  const std::size_t m = 2 + rng.UniformIndex(6);
  const std::size_t n = m * (2 + rng.UniformIndex(8));
  const std::vector<double> x = testing::RandomSeries(&rng, n);
  const std::vector<double> y = testing::RandomSeries(&rng, n);
  const double lb = PaaLowerBound(Paa(x, m), Paa(y, m), n);
  EXPECT_LE(lb, Euclidean(x, y) + 1e-9)
      << "n=" << n << " m=" << m;
}

TEST_P(PaaPropertyTest, MoreSegmentsTightenTheBound) {
  Rng rng(GetParam() + 50);
  const std::size_t n = 48;
  const std::vector<double> x = testing::RandomSeries(&rng, n);
  const std::vector<double> y = testing::RandomSeries(&rng, n);
  // Divisor chain keeps every reduction exact.
  const double lb4 = PaaLowerBound(Paa(x, 4), Paa(y, 4), n);
  const double lb12 = PaaLowerBound(Paa(x, 12), Paa(y, 12), n);
  const double lb48 = PaaLowerBound(Paa(x, 48), Paa(y, 48), n);
  EXPECT_LE(lb4, lb12 + 1e-9);
  EXPECT_LE(lb12, lb48 + 1e-9);
  EXPECT_NEAR(lb48, Euclidean(x, y), 1e-9);  // full resolution: equality
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaaPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace onex
