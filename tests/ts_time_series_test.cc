#include "onex/ts/time_series.h"

#include <gtest/gtest.h>
#include <span>
#include <vector>

#include "onex/ts/dataset.h"
#include "onex/ts/subsequence.h"

namespace onex {
namespace {

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries ts("growth", {1.0, 2.0, 3.0}, "MA");
  EXPECT_EQ(ts.name(), "growth");
  EXPECT_EQ(ts.label(), "MA");
  EXPECT_EQ(ts.length(), 3u);
  EXPECT_FALSE(ts.empty());
  EXPECT_DOUBLE_EQ(ts[1], 2.0);
}

TEST(TimeSeriesTest, SliceViewsUnderlyingData) {
  TimeSeries ts("s", {0.0, 1.0, 2.0, 3.0, 4.0});
  const std::span<const double> mid = ts.Slice(1, 3);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[2], 3.0);
  EXPECT_EQ(mid.data(), ts.values().data() + 1);  // a view, not a copy
}

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.length(), 0u);
}

TEST(DatasetTest, AddAndIndex) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {1.0, 2.0}));
  ds.Add(TimeSeries("b", {3.0, 4.0, 5.0}));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[1].name(), "b");
  EXPECT_EQ(ds.name(), "d");
}

TEST(DatasetTest, FindByName) {
  Dataset ds("d");
  ds.Add(TimeSeries("alpha", {1.0, 2.0}));
  ds.Add(TimeSeries("beta", {1.0, 2.0}));
  ASSERT_TRUE(ds.FindByName("beta").ok());
  EXPECT_EQ(*ds.FindByName("beta"), 1u);
  EXPECT_EQ(ds.FindByName("gamma").status().code(), StatusCode::kNotFound);
}

TEST(DatasetTest, CheckIndexAndRange) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {1.0, 2.0, 3.0, 4.0}));
  EXPECT_TRUE(ds.CheckIndex(0).ok());
  EXPECT_EQ(ds.CheckIndex(1).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(ds.CheckRange(0, 0, 4).ok());
  EXPECT_TRUE(ds.CheckRange(0, 3, 1).ok());
  EXPECT_EQ(ds.CheckRange(0, 0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ds.CheckRange(0, 4, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ds.CheckRange(0, 0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ds.CheckRange(2, 0, 1).code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, GetSlice) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {1.0, 2.0, 3.0}));
  Result<std::span<const double>> ok = ds.GetSlice(0, 1, 2);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ((*ok)[0], 2.0);
  EXPECT_FALSE(ds.GetSlice(0, 2, 2).ok());
}

TEST(DatasetTest, LengthAggregates) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {1.0, 2.0}));
  ds.Add(TimeSeries("b", {1.0, 2.0, 3.0, 4.0, 5.0}));
  EXPECT_EQ(ds.MinLength(), 2u);
  EXPECT_EQ(ds.MaxLength(), 5u);
  EXPECT_EQ(ds.TotalPoints(), 7u);
}

TEST(DatasetTest, EmptyAggregates) {
  Dataset ds;
  EXPECT_EQ(ds.MinLength(), 0u);
  EXPECT_EQ(ds.MaxLength(), 0u);
  EXPECT_EQ(ds.TotalPoints(), 0u);
  const auto [lo, hi] = ds.ValueRange();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 0.0);
}

TEST(DatasetTest, ValueRange) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {-2.0, 5.0}));
  ds.Add(TimeSeries("b", {1.0, 7.5, 0.0}));
  const auto [lo, hi] = ds.ValueRange();
  EXPECT_DOUBLE_EQ(lo, -2.0);
  EXPECT_DOUBLE_EQ(hi, 7.5);
}

TEST(DatasetTest, CountSubsequencesSingleLength) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", std::vector<double>(10, 0.0)));
  // Length 4 over 10 points: 7 start positions.
  EXPECT_EQ(ds.CountSubsequences(4, 4), 7u);
  // Stride 2 -> ceil(7/2) = 4.
  EXPECT_EQ(ds.CountSubsequences(4, 4, 1, 2), 4u);
}

TEST(DatasetTest, CountSubsequencesAllLengths) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", std::vector<double>(5, 0.0)));
  // Lengths 2..5 over 5 points: 4+3+2+1 = 10.
  EXPECT_EQ(ds.CountSubsequences(2, 5), 10u);
  // Series shorter than min_length contribute nothing.
  EXPECT_EQ(ds.CountSubsequences(6, 10), 0u);
  // Degenerate arguments.
  EXPECT_EQ(ds.CountSubsequences(0, 5), 0u);
  EXPECT_EQ(ds.CountSubsequences(3, 2), 0u);
  EXPECT_EQ(ds.CountSubsequences(2, 5, 0), 0u);
}

TEST(DatasetTest, CountSubsequencesMixedLengths) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", std::vector<double>(4, 0.0)));  // len 2,3,4: 3+2+1
  ds.Add(TimeSeries("b", std::vector<double>(3, 0.0)));  // len 2,3: 2+1
  EXPECT_EQ(ds.CountSubsequences(2, 4), 9u);
}

TEST(SubseqRefTest, ResolveAndToString) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {0.0, 10.0, 20.0, 30.0}));
  const SubseqRef ref{0, 1, 2};
  const std::span<const double> vals = ref.Resolve(ds);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], 10.0);
  EXPECT_EQ(ref.ToString(), "s0[1..3)");
  EXPECT_EQ(ref.end(), 3u);
}

TEST(SubseqRefTest, Overlaps) {
  const SubseqRef a{0, 0, 4};   // [0,4)
  const SubseqRef b{0, 3, 4};   // [3,7)
  const SubseqRef c{0, 4, 2};   // [4,6)
  const SubseqRef d{1, 0, 10};  // other series
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));  // touching, not overlapping
  EXPECT_FALSE(a.Overlaps(d));
  EXPECT_TRUE(b.Overlaps(c));
}

TEST(SubseqRefTest, Ordering) {
  const SubseqRef a{0, 1, 3};
  const SubseqRef b{0, 2, 3};
  const SubseqRef c{1, 0, 3};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (SubseqRef{0, 1, 3}));
}

}  // namespace
}  // namespace onex
