#include "onex/net/protocol.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace onex::net {
namespace {

TEST(ParseCommandTest, VerbIsUppercased) {
  Result<Command> cmd = ParseCommandLine("ping");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->verb, "PING");
  EXPECT_TRUE(cmd->args.empty());
  EXPECT_TRUE(cmd->options.empty());
}

TEST(ParseCommandTest, PositionalAndKeyValueArguments) {
  Result<Command> cmd =
      ParseCommandLine("PREPARE mydata st=0.15 minlen=6 norm=zscore");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->args, (std::vector<std::string>{"mydata"}));
  EXPECT_EQ(cmd->options.at("st"), "0.15");
  EXPECT_EQ(cmd->options.at("minlen"), "6");
  EXPECT_EQ(cmd->options.at("norm"), "zscore");
}

TEST(ParseCommandTest, LeadingEqualsIsPositional) {
  Result<Command> cmd = ParseCommandLine("CMD =weird");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->args, (std::vector<std::string>{"=weird"}));
}

TEST(ParseCommandTest, EmptyLineIsParseError) {
  EXPECT_FALSE(ParseCommandLine("").ok());
  EXPECT_FALSE(ParseCommandLine("   \t ").ok());
}

TEST(ProtocolTest, PingPong) {
  Engine engine;
  const json::Value v =
      ExecuteCommand(&engine, *ParseCommandLine("PING"));
  EXPECT_TRUE(v["ok"].as_bool());
  EXPECT_TRUE(v["pong"].as_bool());
}

TEST(ProtocolTest, UnknownVerb) {
  Engine engine;
  const json::Value v =
      ExecuteCommand(&engine, *ParseCommandLine("FROBNICATE x"));
  EXPECT_FALSE(v["ok"].as_bool());
  EXPECT_EQ(v["code"].as_string(), "InvalidArgument");
}

TEST(ProtocolTest, GenPrepareStatsFlow) {
  Engine engine;
  json::Value v = ExecuteCommand(
      &engine, *ParseCommandLine("GEN walks walk num=5 len=16 seed=3"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();

  v = ExecuteCommand(&engine, *ParseCommandLine("LIST"));
  ASSERT_TRUE(v["ok"].as_bool());
  ASSERT_EQ(v["datasets"].as_array().size(), 1u);
  EXPECT_EQ(v["datasets"][0].as_string(), "walks");

  v = ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE walks st=0.2 maxlen=8"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_GT(v["groups"].as_number(), 0.0);
  EXPECT_GT(v["subsequences"].as_number(), v["groups"].as_number() - 1);

  v = ExecuteCommand(&engine, *ParseCommandLine("STATS walks"));
  ASSERT_TRUE(v["ok"].as_bool());
  EXPECT_TRUE(v["prepared"].as_bool());
  EXPECT_DOUBLE_EQ(v["series"].as_number(), 5.0);
  EXPECT_DOUBLE_EQ(v["st"].as_number(), 0.2);
}

TEST(ProtocolTest, GenValidatesArguments) {
  Engine engine;
  EXPECT_FALSE(ExecuteCommand(&engine, *ParseCommandLine("GEN x"))["ok"]
                   .as_bool());
  EXPECT_FALSE(
      ExecuteCommand(&engine, *ParseCommandLine("GEN x nosuchkind"))["ok"]
          .as_bool());
  EXPECT_FALSE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("GEN x walk num=0"))["ok"]
          .as_bool());
  EXPECT_FALSE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("GEN x walk num=abc"))["ok"]
          .as_bool());
}

TEST(ProtocolTest, MatchQueryFlow) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=6 len=18"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine, *ParseCommandLine(
                                  "PREPARE s st=0.2 maxlen=10"))["ok"]
          .as_bool());
  const json::Value v =
      ExecuteCommand(&engine, *ParseCommandLine("MATCH s q=0:2:8 exhaustive=1"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  const json::Value& m = v["match"];
  EXPECT_NEAR(m["normalized_dtw"].as_number(), 0.0, 1e-9);
  EXPECT_FALSE(m["series_name"].as_string().empty());
  EXPECT_FALSE(m["path"].as_array().empty());
}

TEST(ProtocolTest, MatchValidatesQuerySyntax) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=4 len=16"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=8"))["ok"]
          .as_bool());
  EXPECT_FALSE(
      ExecuteCommand(&engine, *ParseCommandLine("MATCH s"))["ok"].as_bool());
  EXPECT_FALSE(ExecuteCommand(&engine, *ParseCommandLine(
                                           "MATCH s q=0:2"))["ok"]
                   .as_bool());
  EXPECT_FALSE(ExecuteCommand(&engine, *ParseCommandLine(
                                           "MATCH s q=a:b:c"))["ok"]
                   .as_bool());
  EXPECT_FALSE(ExecuteCommand(&engine, *ParseCommandLine(
                                           "MATCH s q=-1:0:5"))["ok"]
                   .as_bool());
}

TEST(ProtocolTest, KnnReturnsRequestedCount) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=8 len=20"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=10"))["ok"]
          .as_bool());
  const json::Value v =
      ExecuteCommand(&engine, *ParseCommandLine("KNN s q=0:0:8 k=4"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_EQ(v["matches"].as_array().size(), 4u);
}

// MATCH/KNN/BATCH responses carry the per-query cascade attribution and
// STATS the engine-wide cumulative counters plus the active kernel table
// (DESIGN.md §14).
TEST(ProtocolTest, QueryResponsesCarryCascadeStats) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=8 len=20"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=10"))["ok"]
          .as_bool());

  const auto check_stats = [](const json::Value& s) {
    ASSERT_TRUE(s.is_object());
    // Attribution invariants: every lower-bound prune is credited to
    // exactly one cascade stage, and dtw_evals counts every DP that ran.
    EXPECT_DOUBLE_EQ(
        s["pruned_kim"].as_number() + s["pruned_keogh"].as_number(),
        s["groups_pruned_lb"].as_number() + s["members_pruned_lb"].as_number());
    EXPECT_DOUBLE_EQ(s["dtw_evals"].as_number(),
                     s["rep_dtw_evaluations"].as_number() +
                         s["member_dtw_evaluations"].as_number());
    EXPECT_GE(s["dtw_evals"].as_number(), 1.0);
    EXPECT_GT(s["groups_total"].as_number(), 0.0);
  };

  json::Value v = ExecuteCommand(&engine, *ParseCommandLine("MATCH s q=0:2:8"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  check_stats(v["stats"]);

  v = ExecuteCommand(&engine, *ParseCommandLine("KNN s q=0:0:8 k=3"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  check_stats(v["stats"]);

  v = ExecuteCommand(&engine, *ParseCommandLine("BATCH s q=0:0:8;1:2:8 k=2"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  ASSERT_EQ(v["results"].as_array().size(), 2u);
  for (const json::Value& entry : v["results"].as_array()) {
    check_stats(entry["stats"]);
  }

  // 4 queries so far (MATCH + KNN + 2 BATCH entries); STATS accumulates
  // them engine-wide and names the kernel table answering them.
  v = ExecuteCommand(&engine, *ParseCommandLine("STATS s"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_DOUBLE_EQ(v["queries"].as_number(), 4.0);
  EXPECT_GE(v["dtw_evals"].as_number(), 4.0);
  EXPECT_GE(v["pruned_kim"].as_number() + v["pruned_keogh"].as_number(), 0.0);
  EXPECT_FALSE(v["kernel"].as_string().empty());
}

TEST(ProtocolTest, SeasonalFlow) {
  Engine engine;
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine(
                         "GEN e electricity num=1 len=240"))["ok"]
          .as_bool());
  ASSERT_TRUE(ExecuteCommand(
                  &engine,
                  *ParseCommandLine(
                      "PREPARE e st=0.12 minlen=24 maxlen=24"))["ok"]
                  .as_bool());
  const json::Value v = ExecuteCommand(
      &engine, *ParseCommandLine("SEASONAL e series=0 length=24"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  ASSERT_FALSE(v["patterns"].as_array().empty());
  const json::Value& top = v["patterns"][0];
  EXPECT_GE(top["occurrences"].as_number(), 2.0);
}

TEST(ProtocolTest, OverviewAndThreshold) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=6 len=18"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=10"))["ok"]
          .as_bool());
  json::Value v =
      ExecuteCommand(&engine, *ParseCommandLine("OVERVIEW s top=5"));
  ASSERT_TRUE(v["ok"].as_bool());
  EXPECT_LE(v["overview"]["cells"].as_array().size(), 5u);

  v = ExecuteCommand(&engine, *ParseCommandLine("THRESHOLD s pairs=200"));
  ASSERT_TRUE(v["ok"].as_bool());
  EXPECT_FALSE(v["recommendations"].as_array().empty());
}

TEST(ProtocolTest, DropAndErrors) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s walk num=3 len=12"))["ok"]
                  .as_bool());
  EXPECT_TRUE(
      ExecuteCommand(&engine, *ParseCommandLine("DROP s"))["ok"].as_bool());
  const json::Value v = ExecuteCommand(&engine, *ParseCommandLine("DROP s"));
  EXPECT_FALSE(v["ok"].as_bool());
  EXPECT_EQ(v["code"].as_string(), "NotFound");
  // Operations on missing datasets surface NotFound, not crashes.
  EXPECT_EQ(ExecuteCommand(&engine,
                           *ParseCommandLine("MATCH s q=0:0:4"))["code"]
                .as_string(),
            "NotFound");
}

TEST(ProtocolTest, LoadMissingFileFails) {
  Engine engine;
  const json::Value v = ExecuteCommand(
      &engine, *ParseCommandLine("LOAD x /no/such/file.tsv"));
  EXPECT_FALSE(v["ok"].as_bool());
  EXPECT_EQ(v["code"].as_string(), "IoError");
}

TEST(ProtocolTest, ResponsesAreSingleLineJson) {
  Engine engine;
  const std::string wire =
      FormatResponse(ExecuteCommand(&engine, *ParseCommandLine("PING")));
  ASSERT_FALSE(wire.empty());
  EXPECT_EQ(wire.back(), '\n');
  EXPECT_EQ(std::count(wire.begin(), wire.end(), '\n'), 1);
  EXPECT_TRUE(json::Parse(wire.substr(0, wire.size() - 1)).ok());
}

TEST(ProtocolTest, QuitAcknowledges) {
  Engine engine;
  const json::Value v = ExecuteCommand(&engine, *ParseCommandLine("QUIT"));
  EXPECT_TRUE(v["ok"].as_bool());
  EXPECT_TRUE(v["bye"].as_bool());
}


TEST(ProtocolTest, CatalogFlow) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=5 len=20"))["ok"]
                  .as_bool());
  const json::Value v =
      ExecuteCommand(&engine, *ParseCommandLine("CATALOG s points=6"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  ASSERT_EQ(v["series"].as_array().size(), 5u);
  EXPECT_EQ(v["series"][0]["preview"].as_array().size(), 6u);
  EXPECT_FALSE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("CATALOG s points=0"))["ok"]
          .as_bool());
}

TEST(ProtocolTest, AppendFlow) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=4 len=12"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=8"))["ok"]
          .as_bool());
  const json::Value v = ExecuteCommand(
      &engine, *ParseCommandLine(
                   "APPEND s series=novel v=0.1,0.2,0.4,0.3,0.2,0.1,0.0,0.1,"
                   "0.3,0.5,0.4,0.2"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_DOUBLE_EQ(v["series"].as_number(), 5.0);
  EXPECT_GT(v["groups"].as_number(), 0.0);
}

TEST(ProtocolTest, AppendValidatesValues) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=4 len=12"))["ok"]
                  .as_bool());
  EXPECT_FALSE(
      ExecuteCommand(&engine, *ParseCommandLine("APPEND s"))["ok"].as_bool());
  EXPECT_FALSE(ExecuteCommand(&engine, *ParseCommandLine(
                                           "APPEND s v=1,abc"))["ok"]
                   .as_bool());
  EXPECT_FALSE(ExecuteCommand(&engine, *ParseCommandLine(
                                           "APPEND s v=1"))["ok"]
                   .as_bool());
}

TEST(ProtocolTest, ExtendFlow) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=4 len=12"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=8"))["ok"]
          .as_bool());
  const json::Value v = ExecuteCommand(
      &engine, *ParseCommandLine("EXTEND s series=1 points=0.4,0.5,0.3"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_DOUBLE_EQ(v["series"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v["length"].as_number(), 15.0);
  EXPECT_DOUBLE_EQ(v["points_appended"].as_number(), 3.0);
  EXPECT_GT(v["new_members"].as_number(), 0.0);
  EXPECT_FALSE(v["drift"].as_array().empty());
  EXPECT_GE(v["max_drift"].as_number(), 0.0);

  // The grown tail is immediately searchable over the same session.
  const json::Value m = ExecuteCommand(
      &engine, *ParseCommandLine("MATCH s q=1:7:8 exhaustive=1"));
  ASSERT_TRUE(m["ok"].as_bool()) << m.Dump();
  EXPECT_NEAR(m["match"]["normalized_dtw"].as_number(), 0.0, 1e-9);
}

TEST(ProtocolTest, ExtendResolvesSeriesByName) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=3 len=12"))["ok"]
                  .as_bool());
  // GEN sine names series sine_family_<i>; resolve the second one by name.
  const json::Value v = ExecuteCommand(
      &engine,
      *ParseCommandLine("EXTEND s series=sine_family_1 points=0.1,0.2"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_DOUBLE_EQ(v["series"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v["length"].as_number(), 14.0);
}

TEST(ProtocolTest, ExtendValidatesArguments) {
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=3 len=12"))["ok"]
                  .as_bool());
  for (const char* line : {
           "EXTEND s",                              // missing series + points
           "EXTEND s series=0",                     // missing points
           "EXTEND s points=1,2",                   // missing series
           "EXTEND s series=0 points=1,abc",        // malformed number
           "EXTEND s series=-1 points=1,2",         // negative index
           "EXTEND s series=99 points=1,2",         // out of range
           "EXTEND s series=nosuch points=1,2",     // unknown name
           "EXTEND nosuchset series=0 points=1,2",  // unknown dataset
       }) {
    const json::Value v = ExecuteCommand(&engine, *ParseCommandLine(line));
    EXPECT_FALSE(v["ok"].as_bool()) << line;
  }
}

TEST(ProtocolTest, DriftReportsAndSetsThreshold) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN s sine num=4 len=12"))["ok"]
                  .as_bool());

  // Unprepared: the report carries counters but no per-class scan.
  json::Value v = ExecuteCommand(&engine, &session, *ParseCommandLine("DRIFT s"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_FALSE(v["prepared"].as_bool());
  EXPECT_DOUBLE_EQ(v["threshold"].as_number(), 0.0);

  ASSERT_TRUE(
      ExecuteCommand(&engine, &session,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=8"))["ok"]
          .as_bool());
  // threshold= sets the registry-wide trigger; USE makes DRIFT sessionable.
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("USE s"))["ok"]
                  .as_bool());
  v = ExecuteCommand(&engine, &session,
                     *ParseCommandLine("DRIFT threshold=0.3"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_TRUE(v["prepared"].as_bool());
  EXPECT_DOUBLE_EQ(v["threshold"].as_number(), 0.3);
  EXPECT_DOUBLE_EQ(engine.registry().drift_threshold(), 0.3);
  ASSERT_FALSE(v["classes"].as_array().empty());
  const json::Value& row = v["classes"][0];
  EXPECT_GT(row["members"].as_number(), 0.0);
  EXPECT_GE(row["fraction"].as_number(), 0.0);
  EXPECT_GE(v["max_drift"].as_number(), 0.0);

  // Bad thresholds — and a good threshold aimed at a bad dataset — fail
  // clean and leave the registry-wide trigger untouched.
  for (const char* line :
       {"DRIFT s threshold=-0.1", "DRIFT s threshold=2", "DRIFT s threshold=nan",
        "DRIFT s threshold=abc", "DRIFT nosuch threshold=0.9"}) {
    const json::Value bad = ExecuteCommand(&engine, &session,
                                           *ParseCommandLine(line));
    EXPECT_FALSE(bad["ok"].as_bool()) << line;
  }
  EXPECT_DOUBLE_EQ(engine.registry().drift_threshold(), 0.3);

  // STATS surfaces the maintenance counters.
  v = ExecuteCommand(&engine, &session, *ParseCommandLine("STATS s"));
  ASSERT_TRUE(v["ok"].as_bool());
  EXPECT_TRUE(v["last_max_drift"].is_number());
  EXPECT_FALSE(v["regrouping"].as_bool());
}

TEST(ProtocolTest, AnalyticsVerbsAnswerOverTheWire) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN a sine num=6 len=24 seed=3"))
                  ["ok"]
                      .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine, &session,
                     *ParseCommandLine("PREPARE a st=0.2 maxlen=12"))["ok"]
          .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("USE a"))["ok"]
                  .as_bool());

  json::Value v = ExecuteCommand(&engine, &session,
                                 *ParseCommandLine("ANOMALY top=5 minpts=2"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_GT(v["members_scanned"].as_number(), 0.0);
  ASSERT_FALSE(v["findings"].as_array().empty());
  const json::Value& f = v["findings"][0];
  EXPECT_TRUE(f["score"].is_number());
  EXPECT_TRUE(f["outlier"].is_bool());
  EXPECT_GE(f["length"].as_number(), 4.0);
  ASSERT_FALSE(v["drift"].as_array().empty());
  // Findings arrive sorted by descending score.
  double prev = v["findings"][0]["score"].as_number();
  for (const json::Value& row : v["findings"].as_array()) {
    EXPECT_LE(row["score"].as_number(), prev + 1e-12);
    prev = row["score"].as_number();
  }

  v = ExecuteCommand(
      &engine, &session,
      *ParseCommandLine("CHANGEPOINT series=0 hazard=0.05 maxrun=64 probs=1"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_EQ(v["evaluated"].as_number(), 24.0);
  EXPECT_GE(v["error_bound"].as_number(), 0.0);
  EXPECT_EQ(v["probabilities"].as_array().size(), 24u);
  // By name, against the generated series naming.
  const json::Value by_name = ExecuteCommand(
      &engine, &session,
      *ParseCommandLine("CHANGEPOINT series=sine_family_0 last=8"));
  ASSERT_TRUE(by_name["ok"].as_bool()) << by_name.Dump();
  EXPECT_EQ(by_name["evaluated"].as_number(), 8.0);

  v = ExecuteCommand(&engine, &session,
                     *ParseCommandLine("MOTIF top=3 discords=2"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  ASSERT_FALSE(v["classes"].as_array().empty());
  for (const json::Value& cls : v["classes"].as_array()) {
    EXPECT_GT(cls["length"].as_number(), 0.0);
    ASSERT_LE(cls["densest"].as_array().size(), 3u);
    ASSERT_LE(cls["discords"].as_array().size(), 2u);
    if (cls.as_object().contains("motif")) {
      EXPECT_GE(cls["motif"]["distance"].as_number(), 0.0);
    }
  }

  v = ExecuteCommand(&engine, &session,
                     *ParseCommandLine("FORECAST series=1 horizon=4 k=2"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_EQ(v["values"].as_array().size(), 4u);
  EXPECT_EQ(v["values_norm"].as_array().size(), 4u);
  EXPECT_EQ(v["neighbors"].as_array().size(), 2u);
  EXPECT_EQ(v["tail_length"].as_number(), 12.0);

  v = ExecuteCommand(
      &engine, &session,
      *ParseCommandLine("FORECAST series=0 horizon=3 method=seasonal period=6"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_EQ(v["period"].as_number(), 6.0);
  EXPECT_EQ(v["values"].as_array().size(), 3u);

  // Validation failures stay clean errors, never crashes.
  for (const char* line : {
           "ANOMALY top=0",
           "ANOMALY top=9999999",
           "ANOMALY minpts=0",
           "ANOMALY eps=-1",
           "CHANGEPOINT",               // missing series
           "CHANGEPOINT series=0 hazard=0",
           "CHANGEPOINT series=0 hazard=1.5",
           "CHANGEPOINT series=0 maxrun=1",
           "CHANGEPOINT series=0 maxrun=9999999",
           "CHANGEPOINT series=0 threshold=2",
           "MOTIF top=9999999",
           "MOTIF discords=9999999",
           "FORECAST",                  // missing series
           "FORECAST series=0 horizon=0",
           "FORECAST series=0 horizon=9999999",
           "FORECAST series=0 k=0",
           "FORECAST series=0 method=oracle",
       }) {
    const json::Value bad = ExecuteCommand(&engine, &session,
                                           *ParseCommandLine(line));
    EXPECT_FALSE(bad["ok"].as_bool()) << line;
    EXPECT_EQ(bad["code"].as_string(), "InvalidArgument") << line;
  }
  // Resolution failures carry their own codes but stay clean errors too.
  for (const char* line : {
           "ANOMALY length=13",         // no such length class (NotFound)
           "CHANGEPOINT series=99",     // out of range
           "FORECAST series=0 length=13",
           "ANOMALY dataset=nosuch",
       }) {
    const json::Value bad = ExecuteCommand(&engine, &session,
                                           *ParseCommandLine(line));
    EXPECT_FALSE(bad["ok"].as_bool()) << line;
  }

  // An already-expired deadline (request arrived long ago, deadline_ms
  // counts from arrival) stops each verb with DeadlineExceeded.
  ExecContext stale;
  stale.arrival =
      std::chrono::steady_clock::now() - std::chrono::seconds(10);
  for (const char* line : {
           "ANOMALY deadline_ms=1",
           "CHANGEPOINT series=0 deadline_ms=1",
           "MOTIF deadline_ms=1",
           "FORECAST series=0 deadline_ms=1",
       }) {
    const json::Value bad =
        ExecuteCommand(&engine, &session, *ParseCommandLine(line), stale);
    EXPECT_FALSE(bad["ok"].as_bool()) << line;
    EXPECT_EQ(bad["code"].as_string(), "DeadlineExceeded") << line;
  }
  // And a negative deadline is malformed input, rejected up front.
  const json::Value neg = ExecuteCommand(&engine, &session,
                                         *ParseCommandLine("MOTIF deadline_ms=-1"));
  EXPECT_FALSE(neg["ok"].as_bool());
  EXPECT_EQ(neg["code"].as_string(), "InvalidArgument");
}

/// Regression (wire-input hardening): "nan"/"inf" in any numeric option and
/// NaN/Inf float64s in binary value payloads are rejected at parse time.
/// Pre-fix, EXTEND points=nan and APPEND v=nan were accepted — the poisoned
/// values joined the base and silently broke every later distance
/// comparison (NaN compares false against any cutoff).
TEST(ProtocolTest, NonFiniteNumericWireInputIsRejected) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN s sine num=3 len=12"))["ok"]
                  .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("USE s"))["ok"]
                  .as_bool());

  for (const char* line : {
           "EXTEND series=0 points=1,nan,2",
           "EXTEND series=0 points=inf",
           "EXTEND series=0 points=-inf",
           "EXTEND series=0 points=NaN",
           "APPEND v=0.5,nan",
           "APPEND v=infinity",
           "ANOMALY eps=nan",
           "CHANGEPOINT series=0 hazard=nan",
           "CHANGEPOINT series=0 threshold=inf",
           "DRIFT threshold=nan",
       }) {
    const json::Value bad = ExecuteCommand(&engine, &session,
                                           *ParseCommandLine(line));
    EXPECT_FALSE(bad["ok"].as_bool()) << line;
    EXPECT_EQ(bad["code"].as_string(), "InvalidArgument") << line;
  }

  // Binary dialect: the same contract for raw float64 payloads.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double poison : {qnan, inf, -inf}) {
    Command extend;
    extend.verb = "EXTEND";
    extend.options["series"] = "0";
    extend.payload = {0.25, poison, 0.5};
    const json::Value bad = ExecuteCommand(&engine, &session, extend);
    EXPECT_FALSE(bad["ok"].as_bool());
    EXPECT_EQ(bad["code"].as_string(), "InvalidArgument");

    Command append;
    append.verb = "APPEND";
    append.payload = {poison};
    const json::Value bad2 = ExecuteCommand(&engine, &session, append);
    EXPECT_FALSE(bad2["ok"].as_bool());
    EXPECT_EQ(bad2["code"].as_string(), "InvalidArgument");
  }

  // Nothing leaked into the dataset: the series kept its original length.
  const json::Value stats =
      ExecuteCommand(&engine, &session, *ParseCommandLine("CATALOG points=1"));
  ASSERT_TRUE(stats["ok"].as_bool());
  for (const json::Value& row : stats["series"].as_array()) {
    EXPECT_EQ(row["length"].as_number(), 12.0);
  }
}

TEST(ProtocolTest, UseSetsSessionDefaultDataset) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN s sine num=6 len=18"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine, &session,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=10"))["ok"]
          .as_bool());

  // Without USE and without a name, dataset-scoped verbs must fail clean.
  json::Value v =
      ExecuteCommand(&engine, &session, *ParseCommandLine("MATCH q=0:2:8"));
  EXPECT_FALSE(v["ok"].as_bool());
  EXPECT_EQ(v["code"].as_string(), "InvalidArgument");

  v = ExecuteCommand(&engine, &session, *ParseCommandLine("USE s"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  EXPECT_EQ(v["dataset"].as_string(), "s");

  // Now the bare forms resolve against the session dataset.
  EXPECT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("MATCH q=0:2:8"))["ok"]
                  .as_bool());
  EXPECT_TRUE(
      ExecuteCommand(&engine, &session, *ParseCommandLine("STATS"))["ok"]
          .as_bool());
  EXPECT_TRUE(
      ExecuteCommand(&engine, &session,
                     *ParseCommandLine("KNN q=0:0:8 k=2"))["ok"]
          .as_bool());

  // USE of a missing dataset must not poison the session.
  v = ExecuteCommand(&engine, &session, *ParseCommandLine("USE nope"));
  EXPECT_FALSE(v["ok"].as_bool());
  EXPECT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("MATCH q=0:2:8"))["ok"]
                  .as_bool());

  // Dropping the session dataset clears the default.
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("DROP name=s"))["ok"]
                  .as_bool());
  v = ExecuteCommand(&engine, &session, *ParseCommandLine("MATCH q=0:2:8"));
  EXPECT_FALSE(v["ok"].as_bool());
  EXPECT_EQ(v["code"].as_string(), "InvalidArgument");
}

TEST(ProtocolTest, DatasetOptionOverridesSession) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN a sine num=4 len=16"))["ok"]
                  .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN b walk num=4 len=16"))["ok"]
                  .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("PREPARE dataset=a st=0.2 "
                                               "maxlen=8"))["ok"]
                  .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("USE b"))["ok"]
                  .as_bool());
  // dataset= beats the session default (b is not prepared; a is).
  const json::Value v = ExecuteCommand(
      &engine, &session, *ParseCommandLine("MATCH dataset=a q=0:2:8"));
  EXPECT_TRUE(v["ok"].as_bool()) << v.Dump();
  // The session default still points at b, which must fail as unprepared.
  const json::Value unprepared =
      ExecuteCommand(&engine, &session, *ParseCommandLine("MATCH q=0:2:8"));
  EXPECT_FALSE(unprepared["ok"].as_bool());
  EXPECT_EQ(unprepared["code"].as_string(), "FailedPrecondition");
}

TEST(ProtocolTest, DatasetsReportsSlotDetailAndBudget) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN a sine num=4 len=16"))["ok"]
                  .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN b walk num=4 len=16"))["ok"]
                  .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("PREPARE a st=0.2 maxlen=8"))
                  ["ok"]
                      .as_bool());
  const json::Value v =
      ExecuteCommand(&engine, &session, *ParseCommandLine("DATASETS"));
  ASSERT_TRUE(v["ok"].as_bool()) << v.Dump();
  ASSERT_EQ(v["datasets"].as_array().size(), 2u);
  EXPECT_GT(v["prepared_bytes"].as_number(), 0.0);
  EXPECT_DOUBLE_EQ(v["budget"].as_number(), 0.0);
  for (const json::Value& row : v["datasets"].as_array()) {
    if (row["name"].as_string() == "a") {
      EXPECT_TRUE(row["prepared"].as_bool());
      EXPECT_GT(row["bytes"].as_number(), 0.0);
    } else {
      EXPECT_FALSE(row["prepared"].as_bool());
      EXPECT_FALSE(row["evicted"].as_bool());
    }
  }
}

TEST(ProtocolTest, BudgetVerbDrivesLruEviction) {
  Engine engine;
  Session session;
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("GEN a sine num=4 len=16"))["ok"]
                  .as_bool());
  ASSERT_TRUE(ExecuteCommand(&engine, &session,
                             *ParseCommandLine("PREPARE a st=0.2 maxlen=8"))
                  ["ok"]
                      .as_bool());
  json::Value v =
      ExecuteCommand(&engine, &session, *ParseCommandLine("BUDGET"));
  ASSERT_TRUE(v["ok"].as_bool());
  EXPECT_GT(v["prepared_bytes"].as_number(), 0.0);

  // A one-byte budget evicts the resident base...
  v = ExecuteCommand(&engine, &session, *ParseCommandLine("BUDGET bytes=1"));
  ASSERT_TRUE(v["ok"].as_bool());
  EXPECT_DOUBLE_EQ(v["budget"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v["prepared_bytes"].as_number(), 0.0);

  // ...and a query on the evicted dataset transparently re-prepares it.
  v = ExecuteCommand(&engine, &session, *ParseCommandLine("MATCH a q=0:2:8"));
  EXPECT_TRUE(v["ok"].as_bool()) << v.Dump();

  EXPECT_FALSE(ExecuteCommand(&engine, &session,
                              *ParseCommandLine("BUDGET bytes=-5"))["ok"]
                   .as_bool());
}

TEST(ProtocolTest, LoadAcceptsKeyValueForm) {
  Engine engine;
  const json::Value v = ExecuteCommand(
      &engine, *ParseCommandLine("LOAD name=x path=/no/such/file.tsv"));
  EXPECT_FALSE(v["ok"].as_bool());
  EXPECT_EQ(v["code"].as_string(), "IoError");  // name/path were resolved
  // Mixed form: positional name + path= option resolves too.
  EXPECT_EQ(ExecuteCommand(&engine, *ParseCommandLine(
                               "LOAD y path=/no/such/file.tsv"))["code"]
                .as_string(),
            "IoError");
  EXPECT_FALSE(
      ExecuteCommand(&engine, *ParseCommandLine("LOAD name=x"))["ok"]
          .as_bool());
  EXPECT_FALSE(ExecuteCommand(&engine, *ParseCommandLine("LOAD"))["ok"]
                   .as_bool());
}

TEST(ProtocolTest, SaveAndLoadBaseFlow) {
  const std::string path = ::testing::TempDir() + "/onex_proto_base.onex";
  Engine engine;
  ASSERT_TRUE(ExecuteCommand(&engine, *ParseCommandLine(
                                          "GEN s sine num=4 len=12"))["ok"]
                  .as_bool());
  ASSERT_TRUE(
      ExecuteCommand(&engine,
                     *ParseCommandLine("PREPARE s st=0.2 maxlen=8"))["ok"]
          .as_bool());
  const json::Value saved = ExecuteCommand(
      &engine, *ParseCommandLine("SAVEBASE s " + path));
  ASSERT_TRUE(saved["ok"].as_bool()) << saved.Dump();

  const json::Value loaded = ExecuteCommand(
      &engine, *ParseCommandLine("LOADBASE restored " + path));
  ASSERT_TRUE(loaded["ok"].as_bool()) << loaded.Dump();
  const json::Value stats =
      ExecuteCommand(&engine, *ParseCommandLine("STATS restored"));
  EXPECT_TRUE(stats["prepared"].as_bool());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace onex::net
