#include "onex/distance/euclidean.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "test_util.h"

namespace onex {
namespace {

TEST(EuclideanTest, KnownValues) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(NormalizedEuclidean(a, b), 5.0 / std::sqrt(2.0));
}

TEST(EuclideanTest, IdenticalInputsAreZero) {
  const std::vector<double> a{1.0, -2.0, 3.5};
  EXPECT_DOUBLE_EQ(Euclidean(a, a), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEuclidean(a, a), 0.0);
}

TEST(EuclideanTest, MismatchedLengthsAreInfinite) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isinf(Euclidean(a, b)));
  EXPECT_TRUE(std::isinf(SquaredEuclidean(a, b)));
  EXPECT_TRUE(std::isinf(NormalizedEuclidean(a, b)));
}

TEST(EuclideanTest, EmptyInputsAreInfinite) {
  const std::vector<double> empty;
  const std::vector<double> a{1.0};
  EXPECT_TRUE(std::isinf(Euclidean(empty, empty)));
  EXPECT_TRUE(std::isinf(Euclidean(empty, a)));
}

TEST(EuclideanTest, Symmetry) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{0.0, -1.0, 5.0};
  EXPECT_DOUBLE_EQ(Euclidean(a, b), Euclidean(b, a));
}

TEST(EuclideanTest, EarlyAbandonExactBelowCutoff) {
  const std::vector<double> a{0.0, 0.0, 0.0};
  const std::vector<double> b{1.0, 1.0, 1.0};
  // Squared distance 3, cutoff above it: exact result.
  EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(a, b, 4.0), 3.0);
  // Cutoff below: abandoned.
  EXPECT_TRUE(std::isinf(SquaredEuclideanEarlyAbandon(a, b, 2.0)));
}

TEST(EuclideanTest, EarlyAbandonCutoffIsExclusive) {
  const std::vector<double> a{0.0};
  // Exactly at the cutoff: not abandoned (uses strict >).
  EXPECT_DOUBLE_EQ(
      SquaredEuclideanEarlyAbandon(a, std::vector<double>{2.0}, 4.0), 4.0);
}

class EuclideanPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EuclideanPropertyTest, TriangleInequality) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.UniformIndex(60);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  const std::vector<double> c = testing::RandomSeries(&rng, n);
  EXPECT_LE(Euclidean(a, c), Euclidean(a, b) + Euclidean(b, c) + 1e-9);
}

TEST_P(EuclideanPropertyTest, NormalizedMatchesDefinition) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.UniformIndex(40);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  EXPECT_NEAR(NormalizedEuclidean(a, b),
              Euclidean(a, b) / std::sqrt(static_cast<double>(n)), 1e-12);
}

TEST_P(EuclideanPropertyTest, EarlyAbandonAgreesWithExact) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.UniformIndex(50);
  const std::vector<double> a = testing::RandomSeries(&rng, n);
  const std::vector<double> b = testing::RandomSeries(&rng, n);
  const double exact = SquaredEuclidean(a, b);
  // Generous cutoff: must be exact.
  EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(a, b, exact + 1.0), exact);
  // Tight cutoff below the true value: must abandon.
  if (exact > 1e-9) {
    EXPECT_TRUE(std::isinf(SquaredEuclideanEarlyAbandon(a, b, exact * 0.5)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EuclideanPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace onex
