#include "onex/core/onex_base.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/distance/euclidean.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"
#include "test_util.h"

namespace onex {
namespace {

std::shared_ptr<const Dataset> NormalizedWalks(std::size_t num = 8,
                                               std::size_t len = 20,
                                               std::uint64_t seed = 42) {
  gen::RandomWalkOptions opt;
  opt.num_series = num;
  opt.length = len;
  opt.seed = seed;
  Result<Dataset> norm =
      Normalize(gen::MakeRandomWalks(opt), NormalizationKind::kMinMaxDataset);
  return std::make_shared<const Dataset>(std::move(norm).value());
}

BaseBuildOptions SmallOptions() {
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

TEST(BaseBuildOptionsTest, Validation) {
  BaseBuildOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.st = 0.0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = BaseBuildOptions();
  opt.st = -1.0;
  EXPECT_FALSE(opt.Validate().ok());
  opt = BaseBuildOptions();
  opt.min_length = 1;
  EXPECT_FALSE(opt.Validate().ok());
  opt = BaseBuildOptions();
  opt.max_length = 3;  // < min_length 4
  EXPECT_FALSE(opt.Validate().ok());
  opt = BaseBuildOptions();
  opt.length_step = 0;
  EXPECT_FALSE(opt.Validate().ok());
  opt = BaseBuildOptions();
  opt.stride = 0;
  EXPECT_FALSE(opt.Validate().ok());
}

TEST(OnexBaseTest, RejectsEmptyDataset) {
  auto empty = std::make_shared<const Dataset>();
  EXPECT_FALSE(OnexBase::Build(empty, SmallOptions()).ok());
  EXPECT_FALSE(OnexBase::Build(nullptr, SmallOptions()).ok());
}

TEST(OnexBaseTest, RejectsAllTooShortSeries) {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {1.0, 2.0}));
  BaseBuildOptions opt = SmallOptions();
  opt.min_length = 10;
  opt.max_length = 12;
  Result<OnexBase> base =
      OnexBase::Build(std::make_shared<const Dataset>(ds), opt);
  EXPECT_FALSE(base.ok());
}

TEST(OnexBaseTest, EverySubsequenceLandsInExactlyOneGroup) {
  auto ds = NormalizedWalks();
  Result<OnexBase> base = OnexBase::Build(ds, SmallOptions());
  ASSERT_TRUE(base.ok());

  const std::size_t expected = ds->CountSubsequences(4, 10);
  EXPECT_EQ(base->TotalMembers(), expected);

  std::set<SubseqRef> seen;
  for (const LengthClass& cls : base->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      EXPECT_FALSE(g.empty());
      for (const SubseqRef& ref : g.members()) {
        EXPECT_EQ(ref.length, cls.length);
        EXPECT_TRUE(seen.insert(ref).second)
            << ref.ToString() << " appears in two groups";
      }
    }
  }
  EXPECT_EQ(seen.size(), expected);
}

TEST(OnexBaseTest, FixedLeaderRadiusInvariantIsExact) {
  auto ds = NormalizedWalks(10, 24, 7);
  BaseBuildOptions opt = SmallOptions();
  opt.centroid_policy = CentroidPolicy::kFixedLeader;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  for (const LengthClass& cls : base->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        EXPECT_LE(NormalizedEuclidean(g.centroid_span(), ref.Resolve(*ds)),
                  opt.st / 2.0 + 1e-9);
      }
    }
  }
}

TEST(OnexBaseTest, RepairPolicyRestoresRadiusInvariant) {
  auto ds = NormalizedWalks(10, 24, 13);
  BaseBuildOptions opt = SmallOptions();
  opt.centroid_policy = CentroidPolicy::kRunningMeanRepair;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  for (const LengthClass& cls : base->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        EXPECT_LE(NormalizedEuclidean(g.centroid_span(), ref.Resolve(*ds)),
                  opt.st / 2.0 + 1e-9)
            << "repair pass left a member outside ST/2";
      }
    }
  }
  // Membership is still a partition after repair.
  EXPECT_EQ(base->TotalMembers(), ds->CountSubsequences(4, 10));
}

TEST(OnexBaseTest, PairwiseSimilarityWithinStUnderFixedLeader) {
  // Members within ST/2 of the representative are pairwise within ST by the
  // ED triangle inequality (the paper's §3.1 guarantee).
  auto ds = NormalizedWalks(6, 16, 3);
  BaseBuildOptions opt = SmallOptions();
  opt.max_length = 8;
  opt.centroid_policy = CentroidPolicy::kFixedLeader;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  for (const LengthClass& cls : base->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (std::size_t i = 0; i < g.size(); ++i) {
        for (std::size_t j = i + 1; j < g.size(); ++j) {
          EXPECT_LE(NormalizedEuclidean(g.members()[i].Resolve(*ds),
                                        g.members()[j].Resolve(*ds)),
                    opt.st + 1e-9);
        }
      }
    }
  }
}

TEST(OnexBaseTest, CentroidIsMeanUnderRunningMeanPolicy) {
  auto ds = NormalizedWalks(5, 14, 23);
  BaseBuildOptions opt = SmallOptions();
  opt.max_length = 6;
  opt.centroid_policy = CentroidPolicy::kRunningMean;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  for (const LengthClass& cls : base->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      std::vector<double> mean(cls.length, 0.0);
      for (const SubseqRef& ref : g.members()) {
        const std::span<const double> vals = ref.Resolve(*ds);
        for (std::size_t i = 0; i < cls.length; ++i) mean[i] += vals[i];
      }
      for (double& v : mean) v /= static_cast<double>(g.size());
      for (std::size_t i = 0; i < cls.length; ++i) {
        EXPECT_NEAR(g.centroid()[i], mean[i], 1e-9);
      }
    }
  }
}

TEST(OnexBaseTest, GroupEnvelopeContainsAllMembers) {
  auto ds = NormalizedWalks(6, 18, 29);
  Result<OnexBase> base = OnexBase::Build(ds, SmallOptions());
  ASSERT_TRUE(base.ok());
  for (const LengthClass& cls : base->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      ASSERT_EQ(g.envelope().size(), cls.length);
      for (const SubseqRef& ref : g.members()) {
        const std::span<const double> vals = ref.Resolve(*ds);
        for (std::size_t i = 0; i < cls.length; ++i) {
          EXPECT_LE(g.envelope().lower[i], vals[i] + 1e-12);
          EXPECT_GE(g.envelope().upper[i], vals[i] - 1e-12);
        }
      }
    }
  }
}

TEST(OnexBaseTest, LargerThresholdYieldsFewerGroups) {
  auto ds = NormalizedWalks(10, 24, 31);
  std::size_t prev = std::numeric_limits<std::size_t>::max();
  for (const double st : {0.05, 0.15, 0.4, 1.0}) {
    BaseBuildOptions opt = SmallOptions();
    opt.st = st;
    Result<OnexBase> base = OnexBase::Build(ds, opt);
    ASSERT_TRUE(base.ok());
    EXPECT_LE(base->TotalGroups(), prev) << "st=" << st;
    prev = base->TotalGroups();
  }
}

TEST(OnexBaseTest, HugeThresholdCollapsesToOneGroupPerLength) {
  auto ds = NormalizedWalks(5, 12, 37);
  BaseBuildOptions opt = SmallOptions();
  opt.st = 1e6;
  opt.max_length = 8;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  for (const LengthClass& cls : base->length_classes()) {
    EXPECT_EQ(cls.groups.size(), 1u) << "length " << cls.length;
  }
  EXPECT_EQ(base->TotalGroups(), base->length_classes().size());
}

TEST(OnexBaseTest, StatsAreConsistent) {
  auto ds = NormalizedWalks();
  Result<OnexBase> base = OnexBase::Build(ds, SmallOptions());
  ASSERT_TRUE(base.ok());
  const BaseStats& stats = base->stats();
  EXPECT_EQ(stats.num_length_classes, base->length_classes().size());
  std::size_t groups = 0, members = 0;
  for (const LengthClass& cls : base->length_classes()) {
    groups += cls.groups.size();
    members += cls.total_members;
  }
  EXPECT_EQ(stats.num_groups, groups);
  EXPECT_EQ(stats.num_subsequences, members);
  EXPECT_GT(stats.build_seconds, 0.0);
  EXPECT_GT(stats.CompactionRatio(), 0.0);
  EXPECT_LE(stats.CompactionRatio(), 1.0);
}

TEST(OnexBaseTest, StrideAndLengthStepScoping) {
  auto ds = NormalizedWalks(4, 20, 41);
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 12;
  opt.length_step = 4;  // lengths 4, 8, 12
  opt.stride = 3;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->length_classes().size(), 3u);
  EXPECT_EQ(base->TotalMembers(), ds->CountSubsequences(4, 12, 4, 3));
  for (const LengthClass& cls : base->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        EXPECT_EQ(ref.start % 3, 0u);  // stride respected
      }
    }
  }
}

TEST(OnexBaseTest, FindLengthClass) {
  auto ds = NormalizedWalks();
  Result<OnexBase> base = OnexBase::Build(ds, SmallOptions());
  ASSERT_TRUE(base.ok());
  Result<const LengthClass*> cls = base->FindLengthClass(5);
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ((*cls)->length, 5u);
  EXPECT_EQ(base->FindLengthClass(999).status().code(), StatusCode::kNotFound);
}

TEST(OnexBaseTest, VariableLengthSeriesAreGrouped) {
  Dataset raw("ragged");
  Rng rng(51);
  raw.Add(TimeSeries("short", testing::SmoothSeries(&rng, 6)));
  raw.Add(TimeSeries("long", testing::SmoothSeries(&rng, 18)));
  Result<Dataset> norm = Normalize(raw, NormalizationKind::kMinMaxDataset);
  ASSERT_TRUE(norm.ok());
  auto ds = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions opt;
  opt.st = 0.3;
  opt.min_length = 4;
  Result<OnexBase> base = OnexBase::Build(ds, opt);
  ASSERT_TRUE(base.ok());
  // Length classes beyond 6 only contain the long series.
  Result<const LengthClass*> cls12 = base->FindLengthClass(12);
  ASSERT_TRUE(cls12.ok());
  for (const SimilarityGroup& g : (*cls12)->groups) {
    for (const SubseqRef& ref : g.members()) {
      EXPECT_EQ(ref.series, 1u);
    }
  }
  EXPECT_EQ(base->TotalMembers(), ds->CountSubsequences(4, 18));
}

TEST(CentroidPolicyTest, Names) {
  EXPECT_STREQ(CentroidPolicyToString(CentroidPolicy::kFixedLeader),
               "fixed-leader");
  EXPECT_STREQ(CentroidPolicyToString(CentroidPolicy::kRunningMean),
               "running-mean");
  EXPECT_STREQ(CentroidPolicyToString(CentroidPolicy::kRunningMeanRepair),
               "running-mean-repair");
}

}  // namespace
}  // namespace onex
