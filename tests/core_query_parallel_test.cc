/// Parallel-vs-serial determinism crosscheck (DESIGN.md §6): the parallel
/// query path is a pure latency knob. For random datasets and queries,
/// KnnQuery under threads ∈ {1, 2, 8} must return identical matches,
/// identical distances (bit-for-bit, not approximately) and identical merged
/// QueryStats totals, because every pruning decision is made against
/// deterministic horizons rather than cross-thread racing best-so-fars.
#include "onex/core/query_processor.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace onex {
namespace {

struct Fixture {
  std::shared_ptr<const Dataset> dataset;
  std::unique_ptr<OnexBase> base;
};

Fixture MakeFixture(std::uint64_t seed, const char* kind = "sine",
                    std::size_t num = 10, std::size_t len = 32) {
  Dataset raw;
  if (std::string_view(kind) == "walk") {
    gen::RandomWalkOptions opt;
    opt.num_series = num;
    opt.length = len;
    opt.seed = seed;
    raw = gen::MakeRandomWalks(opt);
  } else {
    gen::SineFamilyOptions opt;
    opt.num_series = num;
    opt.length = len;
    opt.seed = seed;
    raw = gen::MakeSineFamilies(opt);
  }
  Result<Dataset> norm = Normalize(raw, NormalizationKind::kMinMaxDataset);
  Fixture f;
  f.dataset = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions bopt;
  bopt.st = 0.18;
  bopt.min_length = 4;
  bopt.max_length = 16;
  bopt.length_step = 2;
  f.base = std::make_unique<OnexBase>(
      std::move(OnexBase::Build(f.dataset, bopt)).value());
  return f;
}

void ExpectSameStats(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.groups_total, b.groups_total);
  EXPECT_EQ(a.groups_pruned_lb, b.groups_pruned_lb);
  EXPECT_EQ(a.rep_dtw_evaluations, b.rep_dtw_evaluations);
  EXPECT_EQ(a.member_dtw_evaluations, b.member_dtw_evaluations);
  EXPECT_EQ(a.members_pruned_lb, b.members_pruned_lb);
  EXPECT_EQ(a.pruned_kim, b.pruned_kim);
  EXPECT_EQ(a.pruned_keogh, b.pruned_keogh);
  EXPECT_EQ(a.dtw_evals, b.dtw_evals);
}

void ExpectSameMatches(const std::vector<BestMatch>& a,
                       const std::vector<BestMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ref, b[i].ref) << "match " << i;
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].group_index, b[i].group_index);
    // Bit-identical, not near: both paths must run the same arithmetic.
    EXPECT_EQ(a[i].dtw, b[i].dtw);
    EXPECT_EQ(a[i].normalized_dtw, b[i].normalized_dtw);
    EXPECT_EQ(a[i].rep_dtw, b[i].rep_dtw);
    EXPECT_EQ(a[i].normalized_rep_dtw, b[i].normalized_rep_dtw);
    EXPECT_EQ(a[i].path, b[i].path);
  }
}

class ThreadCrosscheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreadCrosscheckTest, KnnIsBitIdenticalAcrossThreadCounts) {
  const Fixture f = MakeFixture(GetParam());
  QueryProcessor qp(f.base.get());
  Rng rng(GetParam() + 71);

  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t series = rng.UniformIndex(f.dataset->size());
    const std::size_t qlen = 6 + rng.UniformIndex(8);
    const std::size_t start =
        rng.UniformIndex((*f.dataset)[series].length() - qlen + 1);
    std::vector<double> q;
    const std::span<const double> vals =
        (*f.dataset)[series].Slice(start, qlen);
    q.assign(vals.begin(), vals.end());
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);

    for (const std::size_t k : {1u, 3u}) {
      QueryOptions serial;
      serial.threads = 1;
      QueryStats serial_stats;
      Result<std::vector<BestMatch>> expect =
          qp.KnnQuery(q, k, serial, &serial_stats);
      ASSERT_TRUE(expect.ok()) << expect.status();

      for (const std::size_t threads : {2u, 8u}) {
        QueryOptions par = serial;
        par.threads = threads;
        QueryStats par_stats;
        Result<std::vector<BestMatch>> got =
            qp.KnnQuery(q, k, par, &par_stats);
        ASSERT_TRUE(got.ok()) << got.status();
        ExpectSameMatches(*expect, *got);
        ExpectSameStats(serial_stats, par_stats);
      }
    }
  }
}

TEST_P(ThreadCrosscheckTest, ExhaustiveModeStaysDeterministicToo) {
  const Fixture f = MakeFixture(GetParam(), "walk", 8, 28);
  QueryProcessor qp(f.base.get());
  const std::span<const double> q = (*f.dataset)[1].Slice(2, 10);

  QueryOptions serial;
  serial.exhaustive = true;
  serial.threads = 1;
  QueryStats s1;
  Result<std::vector<BestMatch>> expect = qp.KnnQuery(q, 2, serial, &s1);
  ASSERT_TRUE(expect.ok());

  QueryOptions par = serial;
  par.threads = 8;
  QueryStats s8;
  Result<std::vector<BestMatch>> got = qp.KnnQuery(q, 2, par, &s8);
  ASSERT_TRUE(got.ok());
  ExpectSameMatches(*expect, *got);
  ExpectSameStats(s1, s8);
}

TEST_P(ThreadCrosscheckTest, PruningTogglesStayDeterministic) {
  const Fixture f = MakeFixture(GetParam());
  QueryProcessor qp(f.base.get());
  const std::span<const double> q = (*f.dataset)[0].Slice(0, 8);

  for (const bool lb : {true, false}) {
    for (const bool ea : {true, false}) {
      QueryOptions serial;
      serial.use_lower_bounds = lb;
      serial.use_early_abandon = ea;
      serial.threads = 1;
      QueryStats s1;
      Result<std::vector<BestMatch>> expect = qp.KnnQuery(q, 2, serial, &s1);
      ASSERT_TRUE(expect.ok());

      QueryOptions par = serial;
      par.threads = 8;
      QueryStats s8;
      Result<std::vector<BestMatch>> got = qp.KnnQuery(q, 2, par, &s8);
      ASSERT_TRUE(got.ok());
      ExpectSameMatches(*expect, *got);
      ExpectSameStats(s1, s8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadCrosscheckTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(ThreadCrosscheckTest, ThreadsZeroMeansPoolWidthAndStaysIdentical) {
  const Fixture f = MakeFixture(7);
  QueryProcessor qp(f.base.get());
  const std::span<const double> q = (*f.dataset)[2].Slice(1, 9);

  QueryOptions serial;
  serial.threads = 1;
  QueryStats s1;
  Result<BestMatch> expect = qp.BestMatchQuery(q, serial, &s1);
  ASSERT_TRUE(expect.ok());

  QueryOptions hw;
  hw.threads = 0;  // full pool width
  QueryStats s0;
  Result<BestMatch> got = qp.BestMatchQuery(q, hw, &s0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(expect->ref, got->ref);
  EXPECT_EQ(expect->dtw, got->dtw);
  EXPECT_EQ(expect->normalized_dtw, got->normalized_dtw);
  ExpectSameStats(s1, s0);
}

}  // namespace
}  // namespace onex
