/// Differential battery for the mapped serving tier (DESIGN.md §17).
///
/// The contract under test: a dataset served off its mmap'd arena
/// checkpoint answers EVERY query — MATCH, KNN and BATCH, under every
/// cascade toggle combination — bitwise identically to a resident twin
/// that replayed the same acknowledged history, QueryStats included; a
/// mutation against a mapped slot promotes it copy-on-write back to the
/// resident tier and stays oracle-equal from then on; and a crash between
/// the arena file landing on disk and the WAL rotation that would adopt it
/// recovers the pre-checkpoint state exactly (the dangling arena is inert).
/// Runs under ASan and TSan in CI.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/hash.h"
#include "onex/common/random.h"
#include "onex/common/string_utils.h"
#include "onex/engine/engine.h"
#include "onex/engine/snapshot_io.h"
#include "onex/json/json.h"
#include "test_util.h"

namespace onex {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/onex_tier_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

DurabilityOptions TestDurability(const std::string& dir) {
  DurabilityOptions opt;
  opt.dir = dir;
  opt.checkpoint_every = 0;  // checkpoints are explicit in this battery
  opt.fsync = false;
  return opt;
}

BaseBuildOptions SmallOptions(double st = 0.25) {
  BaseBuildOptions opt;
  opt.st = st;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

void AppendStats(std::ostringstream& out, const QueryStats& s) {
  out << s.groups_total << ',' << s.groups_pruned_lb << ','
      << s.rep_dtw_evaluations << ',' << s.member_dtw_evaluations << ','
      << s.members_pruned_lb << ',' << s.pruned_kim << ',' << s.pruned_keogh
      << ',' << s.dtw_evals << '|';
}

void AppendMatch(std::ostringstream& out, const MatchResult& m) {
  out << m.match.ref.series << '.' << m.match.ref.start << '.'
      << m.match.ref.length << ':' << m.match.group_index << ':'
      << StrFormat("%.17g,%.17g,%.17g,%.17g", m.match.dtw,
                   m.match.normalized_dtw, m.match.rep_dtw,
                   m.match.normalized_rep_dtw)
      << ':' << m.matched_series_name << ':';
  for (const double v : m.query_values) out << StrFormat("%.17g,", v);
  out << ':';
  for (const double v : m.match_values) out << StrFormat("%.17g,", v);
  out << ':';
  AppendStats(out, m.stats);
  out << ';';
}

/// The full differential transcript of one engine's answers for `name`:
/// every query spec under every cascade toggle combination, as MATCH, KNN
/// and one BATCH per variant, with distances, values and QueryStats all
/// printed at %.17g / exact-integer fidelity. Two engines serve the same
/// bits iff their transcripts are string-equal.
std::string QueryTranscript(Engine& engine, const std::string& name) {
  std::vector<QuerySpec> specs;
  {
    QuerySpec a;
    a.series = 0;
    a.start = 2;
    a.length = 8;
    specs.push_back(a);
    QuerySpec b;
    b.series = 1;
    b.start = 5;
    b.length = 6;
    specs.push_back(b);
    QuerySpec c;
    c.series = 2;
    c.start = 0;
    c.length = 9;
    specs.push_back(c);
    QuerySpec inl;  // inline values exercise the resolve-and-normalize path
    inl.inline_values = {0.3, 0.1, -0.2, -0.4, -0.1, 0.2, 0.5};
    specs.push_back(inl);
  }

  // Every cascade toggle the ablation bench knows, plus the parallel path
  // (threads is a pure latency knob — answers must not move).
  std::vector<std::pair<std::string, QueryOptions>> variants;
  {
    QueryOptions full;
    variants.emplace_back("full", full);
    QueryOptions no_lb = full;
    no_lb.use_lower_bounds = false;
    variants.emplace_back("no_lb", no_lb);
    QueryOptions no_ea = full;
    no_ea.use_early_abandon = false;
    variants.emplace_back("no_ea", no_ea);
    QueryOptions bare = full;
    bare.use_lower_bounds = false;
    bare.use_early_abandon = false;
    variants.emplace_back("bare", bare);
    QueryOptions wide = full;
    wide.exhaustive = true;
    wide.explore_top_groups = 2;
    variants.emplace_back("exhaustive", wide);
    QueryOptions windowed = full;
    windowed.window = 3;
    variants.emplace_back("window3", windowed);
    QueryOptions pooled = full;
    pooled.threads = 0;
    variants.emplace_back("pooled", pooled);
  }

  std::ostringstream out;
  for (const auto& [tag, options] : variants) {
    out << '[' << tag << "]\n";
    for (std::size_t q = 0; q < specs.size(); ++q) {
      out << "MATCH " << q << ' ';
      Result<MatchResult> match =
          engine.SimilaritySearch(name, specs[q], options);
      EXPECT_TRUE(match.ok()) << tag << " q=" << q << ": " << match.status();
      if (match.ok()) AppendMatch(out, *match);
      out << '\n';

      out << "KNN " << q << ' ';
      Result<std::vector<MatchResult>> knn =
          engine.Knn(name, specs[q], 3, options);
      EXPECT_TRUE(knn.ok()) << tag << " q=" << q << ": " << knn.status();
      if (knn.ok()) {
        for (const MatchResult& m : *knn) AppendMatch(out, m);
      }
      out << '\n';
    }
    out << "BATCH ";
    Result<std::vector<MatchResult>> batch =
        engine.SimilaritySearchBatch(name, specs, options);
    EXPECT_TRUE(batch.ok()) << tag << " batch: " << batch.status();
    if (batch.ok()) {
      for (const MatchResult& m : *batch) AppendMatch(out, m);
    }
    out << '\n';
  }
  return out.str();
}

std::string TierOf(Engine& engine, const std::string& name) {
  Result<std::string> tier = engine.registry().Tier(name);
  EXPECT_TRUE(tier.ok()) << tier.status();
  return tier.ok() ? *tier : std::string("<error>");
}

/// One seeded mutation schedule, expressed as data so the subject and its
/// twin replay the identical acknowledged history (mirrors the recovery
/// oracle in engine_recovery_test.cc).
std::vector<std::function<void(Engine&)>> SeededSchedule(std::uint64_t seed) {
  std::vector<std::function<void(Engine&)>> schedule;
  schedule.push_back([seed](Engine& e) {
    ASSERT_TRUE(
        e.LoadDataset("A", onex::testing::SmallDataset(4, 18, seed)).ok());
    ASSERT_TRUE(e.Prepare("A", SmallOptions()).ok());
  });
  Rng gen(seed * 104729);
  const std::size_t ops = 6 + gen.UniformIndex(6);
  for (std::size_t i = 0; i < ops; ++i) {
    const double roll = gen.Uniform();
    if (roll < 0.55) {
      const std::size_t series = gen.UniformIndex(4);
      const std::size_t n = 1 + gen.UniformIndex(4);
      std::vector<double> points;
      for (std::size_t p = 0; p < n; ++p) {
        points.push_back(gen.Uniform(-1.5, 1.5));
      }
      schedule.push_back([series, points](Engine& e) {
        ASSERT_TRUE(e.ExtendSeries("A", series, points).ok());
      });
    } else if (roll < 0.75) {
      const std::vector<double> values =
          onex::testing::RandomSeries(&gen, 8 + gen.UniformIndex(8));
      const std::string name = "app_" + std::to_string(i);
      schedule.push_back([name, values](Engine& e) {
        ASSERT_TRUE(e.AppendSeries("A", TimeSeries(name, values)).ok());
      });
    } else if (roll < 0.9) {
      schedule.push_back([](Engine& e) {
        ASSERT_TRUE(e.registry().RegroupAsync("A", {4, 5, 6}).Wait().ok());
      });
    } else {
      const double st = 0.15 + 0.1 * gen.Uniform();
      schedule.push_back([st](Engine& e) {
        ASSERT_TRUE(e.Prepare("A", SmallOptions(st)).ok());
      });
    }
  }
  // A final checkpoint leaves the WAL clean (records_since_ckpt == 0), the
  // precondition for both the restart-mapped path and manual Demote.
  schedule.push_back([](Engine& e) {
    ASSERT_TRUE(e.registry().Checkpoint("A").ok());
  });
  return schedule;
}

/// The core acceptance criterion, 8 seeded schedules deep: after an
/// identical history, a restart that serves A off its arena mapping and a
/// twin that kept A resident produce string-equal query transcripts.
TEST(EngineTierDiff, MappedColdStartMatchesResidentTwinBitwise) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    const std::string subject_dir =
        FreshDir("cold_subject_" + std::to_string(seed));
    const std::string twin_dir = FreshDir("cold_twin_" + std::to_string(seed));
    const auto schedule = SeededSchedule(seed);

    {
      Engine subject;
      ASSERT_TRUE(subject.EnableDurability(TestDurability(subject_dir)).ok());
      for (const auto& op : schedule) {
        op(subject);
        if (::testing::Test::HasFatalFailure()) return;
      }
      // The subject "restarts" here: its resident state dies with it.
    }
    Engine twin;
    ASSERT_TRUE(twin.EnableDurability(TestDurability(twin_dir)).ok());
    for (const auto& op : schedule) {
      op(twin);
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_EQ(TierOf(twin, "A"), "resident");

    Engine mapped;
    ASSERT_TRUE(mapped.EnableDurability(TestDurability(subject_dir)).ok());
    ASSERT_EQ(TierOf(mapped, "A"), "mapped")
        << "clean-WAL restart must serve off the arena";
    EXPECT_GT(mapped.registry().mapped_bytes(), 0u);

    EXPECT_EQ(QueryTranscript(mapped, "A"), QueryTranscript(twin, "A"))
        << "mapped answers diverged from the resident twin";
    // Read-only traffic must not promote the slot.
    EXPECT_EQ(TierOf(mapped, "A"), "mapped");

    fs::remove_all(subject_dir);
    fs::remove_all(twin_dir);
  }
}

/// Manual demote (the TIER verb's demote=1): the same engine, before and
/// after swapping its resident base for the arena mapping, answers
/// identically — and a later mutation promotes copy-on-write and stays
/// oracle-equal against a twin that never left the resident tier.
TEST(EngineTierDiff, DemoteServesSameBitsAndExtendPromotesCopyOnWrite) {
  const std::string dir = FreshDir("demote");
  const std::string twin_dir = FreshDir("demote_twin");
  const auto schedule = SeededSchedule(3);

  Engine subject;
  ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
  Engine twin;
  ASSERT_TRUE(twin.EnableDurability(TestDurability(twin_dir)).ok());
  for (const auto& op : schedule) {
    op(subject);
    op(twin);
    if (::testing::Test::HasFatalFailure()) return;
  }

  const std::string resident_transcript = QueryTranscript(subject, "A");
  ASSERT_EQ(TierOf(subject, "A"), "resident");
  ASSERT_TRUE(subject.registry().Demote("A").ok());
  ASSERT_EQ(TierOf(subject, "A"), "mapped");
  EXPECT_GT(subject.registry().mapped_bytes(), 0u);
  EXPECT_EQ(QueryTranscript(subject, "A"), resident_transcript)
      << "demote changed answers";

  // Copy-on-write promotion: one extend, applied to both engines. The
  // mapped subject must end resident again (writers replace the snapshot
  // with one that owns its storage) and keep matching the twin.
  const std::vector<double> tail = {0.42, -0.17, 0.09};
  ASSERT_TRUE(subject.ExtendSeries("A", 1, tail).ok());
  ASSERT_TRUE(twin.ExtendSeries("A", 1, tail).ok());
  EXPECT_EQ(TierOf(subject, "A"), "resident")
      << "a mutation must promote the mapped slot";
  EXPECT_EQ(subject.registry().mapped_bytes(), 0u);
  EXPECT_EQ(QueryTranscript(subject, "A"), QueryTranscript(twin, "A"))
      << "post-promotion answers diverged";

  fs::remove_all(dir);
  fs::remove_all(twin_dir);
}

/// Budget pressure downgrades instead of stripping: with durability on and
/// a clean checkpoint, shrinking the budget moves the victim to the mapped
/// tier (first query = page-in, not rebuild) and its answers do not move.
TEST(EngineTierDiff, BudgetEvictionDowngradesToMappedTier) {
  const std::string dir = FreshDir("budget");
  Engine engine;
  ASSERT_TRUE(engine.EnableDurability(TestDurability(dir)).ok());
  ASSERT_TRUE(
      engine.LoadDataset("A", onex::testing::SmallDataset(4, 18, 21)).ok());
  ASSERT_TRUE(engine.Prepare("A", SmallOptions()).ok());
  ASSERT_TRUE(engine.registry().Checkpoint("A").ok());

  const std::string before = QueryTranscript(engine, "A");
  engine.registry().SetPreparedBudget(1);  // force A over budget
  EXPECT_EQ(TierOf(engine, "A"), "mapped")
      << "durable clean slot must downgrade, not strip";
  EXPECT_EQ(engine.registry().prepared_bytes(), 0u);
  EXPECT_GT(engine.registry().mapped_bytes(), 0u);
  EXPECT_EQ(QueryTranscript(engine, "A"), before);

  // A pinned slot is exempt: promote it back via a mutation, pin, shrink.
  engine.registry().SetPreparedBudget(0);
  ASSERT_TRUE(engine.ExtendSeries("A", 0, {0.5}).ok());
  ASSERT_EQ(TierOf(engine, "A"), "resident");
  ASSERT_TRUE(engine.registry().SetPinned("A", true).ok());
  engine.registry().SetPreparedBudget(1);
  EXPECT_EQ(TierOf(engine, "A"), "resident") << "pinned slots never move";
  ASSERT_TRUE(engine.registry().SetPinned("A", false).ok());

  fs::remove_all(dir);
}

/// Demote preconditions: no durability, a dirty WAL, a pin, and an
/// unprepared slot are each a structured FailedPrecondition, never a
/// silent wrong-tier swap.
TEST(EngineTierDiff, DemoteRequiresCleanDurableResidentUnpinnedSlot) {
  {
    Engine ephemeral;  // no durability at all
    ASSERT_TRUE(
        ephemeral.LoadDataset("A", onex::testing::SmallDataset(3, 12, 5))
            .ok());
    ASSERT_TRUE(ephemeral.Prepare("A", SmallOptions()).ok());
    EXPECT_FALSE(ephemeral.registry().Demote("A").ok());
    EXPECT_EQ(TierOf(ephemeral, "A"), "resident");
  }
  const std::string dir = FreshDir("preconds");
  Engine engine;
  ASSERT_TRUE(engine.EnableDurability(TestDurability(dir)).ok());
  ASSERT_TRUE(
      engine.LoadDataset("A", onex::testing::SmallDataset(3, 12, 5)).ok());
  EXPECT_FALSE(engine.registry().Demote("A").ok()) << "unprepared slot";
  ASSERT_TRUE(engine.Prepare("A", SmallOptions()).ok());
  EXPECT_FALSE(engine.registry().Demote("A").ok())
      << "dirty WAL (no checkpoint yet) must refuse: the arena is stale";
  ASSERT_TRUE(engine.registry().Checkpoint("A").ok());
  ASSERT_TRUE(engine.registry().SetPinned("A", true).ok());
  EXPECT_FALSE(engine.registry().Demote("A").ok()) << "pinned slot";
  ASSERT_TRUE(engine.registry().SetPinned("A", false).ok());
  ASSERT_TRUE(engine.registry().Demote("A").ok());
  EXPECT_TRUE(engine.registry().Demote("A").ok())
      << "demote of an already-mapped slot is idempotent";
  EXPECT_FALSE(engine.registry().Demote("nope").ok()) << "unknown dataset";
  fs::remove_all(dir);
}

/// The crash-matrix row ISSUE.md names: kill between the arena checkpoint
/// file landing on disk and the WAL rotation that would reference it. The
/// dangling newer arena (and a garbage sibling) must be ignored — recovery
/// replays the WAL against the checkpoint it actually references and
/// reproduces the acknowledged battery exactly.
TEST(EngineTierDiff, CrashBetweenArenaWriteAndWalRotationIsInert) {
  const std::string dir = FreshDir("crashrow");
  std::string live_transcript;
  std::string adopted_ckpt;
  {
    Engine subject;
    ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
    ASSERT_TRUE(
        subject.LoadDataset("A", onex::testing::SmallDataset(4, 18, 13)).ok());
    ASSERT_TRUE(subject.Prepare("A", SmallOptions()).ok());
    ASSERT_TRUE(subject.registry().Checkpoint("A").ok());
    // Mutations after the adopted checkpoint: the WAL now carries records
    // beyond it, exactly the window an interrupted re-checkpoint leaves.
    ASSERT_TRUE(subject.ExtendSeries("A", 0, {0.7, -0.3}).ok());
    ASSERT_TRUE(subject.ExtendSeries("A", 2, {0.1}).ok());
    live_transcript = QueryTranscript(subject, "A");
    for (const auto& entry : fs::directory_iterator(dir + "/A")) {
      const std::string base = entry.path().filename().string();
      if (base.rfind("ckpt-", 0) == 0) adopted_ckpt = entry.path().string();
    }
    ASSERT_FALSE(adopted_ckpt.empty());
  }
  // The "crash": a newer arena landed (seq far past the rotation marker's)
  // but the WAL was never rotated to reference it — plus a torn garbage
  // twin, the other half-written possibility.
  fs::copy_file(adopted_ckpt, dir + "/A/ckpt-9999");
  std::ofstream(dir + "/A/ckpt-10000", std::ios::binary)
      << "ONEXARNA\x01\x00\x00\x00 torn arena prefix";

  Engine recovered;
  ASSERT_TRUE(recovered.EnableDurability(TestDurability(dir)).ok());
  EXPECT_EQ(TierOf(recovered, "A"), "resident")
      << "a dirty WAL tail must materialize, not map";
  EXPECT_EQ(QueryTranscript(recovered, "A"), live_transcript)
      << "dangling arena files changed recovered answers";
  fs::remove_all(dir);
}

/// Legacy data dirs (pre-arena ONEXCKPT checkpoints) keep recovering: the
/// reader sniffs the format per file, and a mapped-tier restart falls back
/// to materializing when the checkpoint is not an arena.
TEST(EngineTierDiff, LegacyCheckpointFallsBackToMaterializedRecovery) {
  const std::string dir = FreshDir("legacy");
  std::string transcript;
  std::string ckpt_path;
  {
    Engine subject;
    ASSERT_TRUE(subject.EnableDurability(TestDurability(dir)).ok());
    ASSERT_TRUE(
        subject.LoadDataset("A", onex::testing::SmallDataset(4, 16, 17)).ok());
    ASSERT_TRUE(subject.Prepare("A", SmallOptions()).ok());
    ASSERT_TRUE(subject.registry().Checkpoint("A").ok());
    transcript = QueryTranscript(subject, "A");
    for (const auto& entry : fs::directory_iterator(dir + "/A")) {
      const std::string base = entry.path().filename().string();
      if (base.rfind("ckpt-", 0) == 0) ckpt_path = entry.path().string();
    }
    ASSERT_FALSE(ckpt_path.empty());
  }
  // Simulate a legacy dir: overwrite the arena with a text "ONEXCKPT 1"
  // checkpoint of the same state, written exactly as the retired encoder
  // did (header + raw section + ONEXPREP payload, FNV-guarded body).
  {
    Engine writer;
    ASSERT_TRUE(
        writer.LoadDataset("A", onex::testing::SmallDataset(4, 16, 17)).ok());
    ASSERT_TRUE(writer.Prepare("A", SmallOptions()).ok());
    Result<std::shared_ptr<const PreparedDataset>> snap = writer.Get("A");
    ASSERT_TRUE(snap.ok());
    std::ostringstream payload;
    payload << "raw " << (*snap)->raw->size() << '\n';
    for (const TimeSeries& ts : (*snap)->raw->series()) {
      payload << "s \"" << json::EscapeString(ts.name()) << "\" \""
              << json::EscapeString(ts.label()) << "\" " << ts.length();
      for (const double v : ts.values()) payload << StrFormat(" %.17g", v);
      payload << '\n';
    }
    ASSERT_TRUE(WritePreparedPayload(**snap, payload).ok());
    const std::string body = payload.str();
    std::ofstream out(ckpt_path, std::ios::binary | std::ios::trunc);
    out << StrFormat("ONEXCKPT 1 %zu %016llx\n", body.size(),
                     static_cast<unsigned long long>(Fnv1a64(body)))
        << body;
  }
  Engine recovered;
  ASSERT_TRUE(recovered.EnableDurability(TestDurability(dir)).ok());
  EXPECT_EQ(TierOf(recovered, "A"), "resident")
      << "legacy checkpoints cannot be served in place";
  EXPECT_EQ(recovered.registry().mapped_bytes(), 0u);
  EXPECT_EQ(QueryTranscript(recovered, "A"), transcript);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace onex
