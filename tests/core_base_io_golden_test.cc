/// Golden-file properties of the ONEXBASE persistence format: byte-stable
/// serialization (same base -> same bytes, across independent builds and
/// across a save/load round trip), and corruption robustness — flipped
/// bytes and truncations must surface as clean parse/validation errors or
/// load into a base that still satisfies its invariants, never UB. Run
/// under ASan in CI.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/core/base_io.h"
#include "onex/core/onex_base.h"
#include "test_util.h"

namespace onex {
namespace {

BaseBuildOptions GoldenOptions() {
  BaseBuildOptions opt;
  opt.st = 0.25;
  opt.min_length = 4;
  opt.max_length = 10;
  return opt;
}

OnexBase BuildGoldenBase() {
  auto ds = std::make_shared<const Dataset>(
      testing::SmallDataset(/*num=*/5, /*len=*/20, /*seed=*/99));
  Result<OnexBase> base = OnexBase::Build(ds, GoldenOptions());
  EXPECT_TRUE(base.ok());
  return std::move(base).value();
}

std::string Serialize(const OnexBase& base) {
  std::ostringstream out;
  EXPECT_TRUE(SaveBase(base, out).ok());
  return out.str();
}

/// FNV-1a: a stable fingerprint for the golden bytes.
std::uint64_t Digest(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Structural invariants a successfully loaded base must satisfy no matter
/// what bytes produced it.
void CheckInvariants(const OnexBase& base) {
  std::size_t groups = 0;
  std::size_t members = 0;
  std::size_t prev_length = 0;
  for (const LengthClass& cls : base.length_classes()) {
    ASSERT_GT(cls.length, prev_length) << "length classes out of order";
    prev_length = cls.length;
    ASSERT_NE(cls.store, nullptr);
    ASSERT_EQ(cls.store->length(), cls.length);
    ASSERT_EQ(cls.groups.size(), cls.store->num_groups());
    for (std::size_t g = 0; g < cls.store->num_groups(); ++g) {
      ASSERT_EQ(cls.store->centroid(g).size(), cls.length);
      ASSERT_FALSE(cls.store->members(g).empty());
      for (const SubseqRef& ref : cls.store->members(g)) {
        ASSERT_EQ(ref.length, cls.length);
        ASSERT_TRUE(
            base.dataset().CheckRange(ref.series, ref.start, ref.length).ok());
      }
    }
    groups += cls.store->num_groups();
    members += cls.store->total_members();
  }
  ASSERT_EQ(base.stats().num_groups, groups);
  ASSERT_EQ(base.stats().num_subsequences, members);
  ASSERT_GT(base.MemoryUsage(), 0u);
}

TEST(BaseIoGoldenTest, IndependentBuildsSerializeToIdenticalBytes) {
  const std::string first = Serialize(BuildGoldenBase());
  const std::string second = Serialize(BuildGoldenBase());
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(Digest(first), Digest(second));
  EXPECT_EQ(first, second);
}

TEST(BaseIoGoldenTest, SaveLoadSaveIsByteStable) {
  const std::string saved = Serialize(BuildGoldenBase());
  std::istringstream in(saved);
  Result<OnexBase> restored = LoadBase(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  CheckInvariants(*restored);
  const std::string resaved = Serialize(*restored);
  EXPECT_EQ(Digest(saved), Digest(resaved));
  EXPECT_EQ(saved, resaved);
}

TEST(BaseIoGoldenTest, RandomByteFlipsNeverCauseUb) {
  const std::string golden = Serialize(BuildGoldenBase());
  Rng rng(0xDEADBEEF);
  int clean_errors = 0;
  int still_valid = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string corrupt = golden;
    // One to three byte flips per attempt.
    const std::size_t flips = 1 + rng.UniformIndex(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t off = rng.UniformIndex(corrupt.size());
      char next = static_cast<char>(rng.UniformInt(0, 255));
      // Never flip a byte into a newline: that splits a record rather than
      // corrupting it, which is the truncation test's job.
      if (next == '\n') next = 'x';
      corrupt[off] = next;
    }
    std::istringstream in(corrupt);
    const Result<OnexBase> loaded = LoadBase(in);
    if (loaded.ok()) {
      // A flip inside a numeric literal can keep the file well-formed; the
      // restored base must still be internally consistent.
      CheckInvariants(*loaded);
      ++still_valid;
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
      ++clean_errors;
    }
  }
  // The format's framing (counts, markers, quoted names) must catch the
  // bulk of corruption as parse errors.
  EXPECT_GT(clean_errors, 0);
  EXPECT_GT(clean_errors + still_valid, 0);
}

TEST(BaseIoGoldenTest, EveryTruncationIsRejected) {
  const std::string golden = Serialize(BuildGoldenBase());
  // Cut after every line boundary: a prefix that lost at least one line
  // must be rejected (missing counts, missing END marker).
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    if (golden[i] == '\n') cuts.push_back(i + 1);
  }
  ASSERT_GT(cuts.size(), 3u);
  cuts.pop_back();  // the full file is the valid case
  for (const std::size_t cut : cuts) {
    std::istringstream in(golden.substr(0, cut));
    const Result<OnexBase> loaded = LoadBase(in);
    EXPECT_FALSE(loaded.ok()) << "truncation at byte " << cut << " accepted";
  }
  // Mid-line truncations too (every 97th byte keeps the loop cheap).
  for (std::size_t cut = 1; cut < golden.size(); cut += 97) {
    if (golden[cut - 1] == '\n') continue;
    std::istringstream in(golden.substr(0, cut));
    const Result<OnexBase> loaded = LoadBase(in);
    EXPECT_FALSE(loaded.ok()) << "mid-line truncation at " << cut
                              << " accepted";
  }
}

TEST(BaseIoGoldenTest, GarbagePrologueIsRejected) {
  const std::string golden = Serialize(BuildGoldenBase());
  {
    std::istringstream in("GARBAGE\n" + golden);
    EXPECT_FALSE(LoadBase(in).ok());
  }
  {
    std::istringstream in(std::string("\x00\xff\x7f", 3) + golden);
    EXPECT_FALSE(LoadBase(in).ok());
  }
}

}  // namespace
}  // namespace onex
