#include "onex/ts/normalization.h"

#include <cstddef>
#include <gtest/gtest.h>

#include "onex/common/math_utils.h"
#include "test_util.h"

namespace onex {
namespace {

Dataset TwoSeries() {
  Dataset ds("d");
  ds.Add(TimeSeries("a", {0.0, 5.0, 10.0}));
  ds.Add(TimeSeries("b", {-10.0, 0.0}));
  return ds;
}

TEST(NormalizationTest, NoneIsIdentity) {
  const Dataset ds = TwoSeries();
  Result<Dataset> out = Normalize(ds, NormalizationKind::kNone);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_DOUBLE_EQ((*out)[0][1], 5.0);
  EXPECT_DOUBLE_EQ((*out)[1][0], -10.0);
}

TEST(NormalizationTest, MinMaxDatasetUsesGlobalRange) {
  NormalizationParams params;
  Result<Dataset> out =
      Normalize(TwoSeries(), NormalizationKind::kMinMaxDataset, &params);
  ASSERT_TRUE(out.ok());
  // Global range [-10, 10].
  EXPECT_DOUBLE_EQ(params.min, -10.0);
  EXPECT_DOUBLE_EQ(params.max, 10.0);
  EXPECT_DOUBLE_EQ((*out)[0][0], 0.5);   // 0 -> 0.5
  EXPECT_DOUBLE_EQ((*out)[0][2], 1.0);   // 10 -> 1
  EXPECT_DOUBLE_EQ((*out)[1][0], 0.0);   // -10 -> 0
}

TEST(NormalizationTest, MinMaxDatasetBoundsHold) {
  const Dataset ds = testing::SmallDataset(8, 40, 3);
  Result<Dataset> out = Normalize(ds, NormalizationKind::kMinMaxDataset);
  ASSERT_TRUE(out.ok());
  const auto [lo, hi] = out->ValueRange();
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 1.0);
  EXPECT_DOUBLE_EQ(lo, 0.0);  // extrema are attained
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(NormalizationTest, MinMaxSeriesEachSeriesSpansUnitInterval) {
  Result<Dataset> out =
      Normalize(TwoSeries(), NormalizationKind::kMinMaxSeries);
  ASSERT_TRUE(out.ok());
  for (const TimeSeries& ts : out->series()) {
    EXPECT_DOUBLE_EQ(Min(ts.AsSpan()), 0.0);
    EXPECT_DOUBLE_EQ(Max(ts.AsSpan()), 1.0);
  }
}

TEST(NormalizationTest, ZScoreSeriesMoments) {
  const Dataset ds = testing::SmallDataset(5, 50, 9);
  Result<Dataset> out = Normalize(ds, NormalizationKind::kZScoreSeries);
  ASSERT_TRUE(out.ok());
  for (const TimeSeries& ts : out->series()) {
    EXPECT_NEAR(Mean(ts.AsSpan()), 0.0, 1e-9);
    EXPECT_NEAR(StdDev(ts.AsSpan()), 1.0, 1e-9);
  }
}

TEST(NormalizationTest, ConstantSeriesMapsToZeros) {
  Dataset ds("d");
  ds.Add(TimeSeries("flat", {4.0, 4.0, 4.0}));
  for (const NormalizationKind kind :
       {NormalizationKind::kMinMaxSeries, NormalizationKind::kZScoreSeries}) {
    Result<Dataset> out = Normalize(ds, kind);
    ASSERT_TRUE(out.ok());
    for (double v : (*out)[0].values()) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(NormalizationTest, ConstantDatasetMinMaxDataset) {
  Dataset ds("d");
  ds.Add(TimeSeries("flat", {4.0, 4.0}));
  ds.Add(TimeSeries("flat2", {4.0, 4.0, 4.0}));
  Result<Dataset> out = Normalize(ds, NormalizationKind::kMinMaxDataset);
  ASSERT_TRUE(out.ok());
  for (const TimeSeries& ts : out->series()) {
    for (double v : ts.values()) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(NormalizationTest, DenormalizeRoundTripsMinMaxDataset) {
  NormalizationParams params;
  const Dataset raw = TwoSeries();
  Result<Dataset> out =
      Normalize(raw, NormalizationKind::kMinMaxDataset, &params);
  ASSERT_TRUE(out.ok());
  for (std::size_t s = 0; s < raw.size(); ++s) {
    for (std::size_t i = 0; i < raw[s].length(); ++i) {
      EXPECT_NEAR(Denormalize(params, s, (*out)[s][i]), raw[s][i], 1e-12);
    }
  }
}

TEST(NormalizationTest, DenormalizeRoundTripsPerSeriesKinds) {
  const Dataset raw = testing::SmallDataset(4, 20, 5);
  for (const NormalizationKind kind :
       {NormalizationKind::kMinMaxSeries, NormalizationKind::kZScoreSeries}) {
    NormalizationParams params;
    Result<Dataset> out = Normalize(raw, kind, &params);
    ASSERT_TRUE(out.ok());
    for (std::size_t s = 0; s < raw.size(); ++s) {
      for (std::size_t i = 0; i < raw[s].length(); ++i) {
        EXPECT_NEAR(Denormalize(params, s, (*out)[s][i]), raw[s][i], 1e-9);
      }
    }
  }
}

TEST(NormalizationTest, KindStringsRoundTrip) {
  for (const NormalizationKind kind :
       {NormalizationKind::kNone, NormalizationKind::kMinMaxDataset,
        NormalizationKind::kMinMaxSeries, NormalizationKind::kZScoreSeries}) {
    Result<NormalizationKind> back =
        NormalizationKindFromString(NormalizationKindToString(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(NormalizationKindFromString("bogus").ok());
  // Aliases.
  EXPECT_EQ(*NormalizationKindFromString("minmax"),
            NormalizationKind::kMinMaxDataset);
  EXPECT_EQ(*NormalizationKindFromString("zscore"),
            NormalizationKind::kZScoreSeries);
}

TEST(NormalizationTest, PreservesNamesAndLabels) {
  Dataset ds("d");
  ds.Add(TimeSeries("alpha", {1.0, 2.0}, "labelled"));
  Result<Dataset> out = Normalize(ds, NormalizationKind::kMinMaxDataset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].name(), "alpha");
  EXPECT_EQ((*out)[0].label(), "labelled");
}

}  // namespace
}  // namespace onex
