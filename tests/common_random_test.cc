#include "onex/common/random.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace onex {
namespace {

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformIndex(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(RngTest, UniformRealInHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianVectorSizeAndDeterminism) {
  Rng a(29), b(29);
  const std::vector<double> va = a.GaussianVector(64, 1.0, 0.5);
  const std::vector<double> vb = b.GaussianVector(64, 1.0, 0.5);
  ASSERT_EQ(va.size(), 64u);
  EXPECT_EQ(va, vb);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> xs{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = xs;
  rng.Shuffle(&xs);
  std::vector<int> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);  // same multiset
}

TEST(RngTest, ShuffleHandlesTinyInputs) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkDecorrelatesStreams) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.UniformInt(0, 1 << 30) == child.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(43), b(43);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ca.UniformInt(0, 1000), cb.UniformInt(0, 1000));
  }
}

}  // namespace
}  // namespace onex
