#include "onex/core/base_io.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/core/incremental.h"
#include "onex/core/query_processor.h"
#include "onex/distance/euclidean.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace onex {
namespace {

OnexBase MakeBase(CentroidPolicy policy = CentroidPolicy::kRunningMean,
                  std::uint64_t seed = 42) {
  gen::SineFamilyOptions gopt;
  gopt.num_series = 6;
  gopt.length = 20;
  gopt.seed = seed;
  Result<Dataset> norm = Normalize(gen::MakeSineFamilies(gopt),
                                   NormalizationKind::kMinMaxDataset);
  auto ds = std::make_shared<const Dataset>(std::move(norm).value());
  BaseBuildOptions opt;
  opt.st = 0.2;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.length_step = 2;
  opt.centroid_policy = policy;
  return std::move(OnexBase::Build(ds, opt)).value();
}

void ExpectBasesEquivalent(const OnexBase& a, const OnexBase& b) {
  ASSERT_EQ(a.length_classes().size(), b.length_classes().size());
  EXPECT_EQ(a.TotalGroups(), b.TotalGroups());
  EXPECT_EQ(a.TotalMembers(), b.TotalMembers());
  for (std::size_t c = 0; c < a.length_classes().size(); ++c) {
    const LengthClass& ca = a.length_classes()[c];
    const LengthClass& cb = b.length_classes()[c];
    ASSERT_EQ(ca.length, cb.length);
    ASSERT_EQ(ca.groups.size(), cb.groups.size());
    for (std::size_t g = 0; g < ca.groups.size(); ++g) {
      EXPECT_TRUE(std::ranges::equal(ca.groups[g].members(),
                                     cb.groups[g].members()));
      ASSERT_EQ(ca.groups[g].centroid().size(), cb.groups[g].centroid().size());
      for (std::size_t i = 0; i < ca.groups[g].centroid().size(); ++i) {
        EXPECT_NEAR(ca.groups[g].centroid()[i], cb.groups[g].centroid()[i],
                    1e-12);
      }
    }
  }
}

TEST(BaseIoTest, SaveLoadRoundTripsStructure) {
  const OnexBase base = MakeBase();
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(base, buf).ok());
  Result<OnexBase> back = LoadBase(buf);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectBasesEquivalent(base, *back);
  EXPECT_EQ(back->options().st, base.options().st);
  EXPECT_EQ(back->options().min_length, base.options().min_length);
  EXPECT_EQ(back->options().centroid_policy, base.options().centroid_policy);
  EXPECT_EQ(back->dataset().name(), base.dataset().name());
  EXPECT_EQ(back->dataset().size(), base.dataset().size());
}

TEST(BaseIoTest, RoundTripPreservesDatasetValuesExactly) {
  const OnexBase base = MakeBase();
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(base, buf).ok());
  Result<OnexBase> back = LoadBase(buf);
  ASSERT_TRUE(back.ok());
  for (std::size_t s = 0; s < base.dataset().size(); ++s) {
    EXPECT_EQ(base.dataset()[s].values(), back->dataset()[s].values())
        << "series " << s;
    EXPECT_EQ(base.dataset()[s].name(), back->dataset()[s].name());
    EXPECT_EQ(base.dataset()[s].label(), back->dataset()[s].label());
  }
}

TEST(BaseIoTest, RoundTripPreservesQueryAnswers) {
  const OnexBase base = MakeBase();
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(base, buf).ok());
  Result<OnexBase> back = LoadBase(buf);
  ASSERT_TRUE(back.ok());

  QueryProcessor before(&base);
  QueryProcessor after(&*back);
  const std::span<const double> q = base.dataset()[2].Slice(3, 8);
  QueryOptions opt;
  opt.exhaustive = true;
  Result<BestMatch> m0 = before.BestMatchQuery(q, opt);
  Result<BestMatch> m1 = after.BestMatchQuery(q, opt);
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m0->ref, m1->ref);
  EXPECT_NEAR(m0->normalized_dtw, m1->normalized_dtw, 1e-12);
}

TEST(BaseIoTest, FixedLeaderCentroidSurvivesRoundTrip) {
  const OnexBase base = MakeBase(CentroidPolicy::kFixedLeader);
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(base, buf).ok());
  Result<OnexBase> back = LoadBase(buf);
  ASSERT_TRUE(back.ok());
  ExpectBasesEquivalent(base, *back);
  // The leader invariant holds after restore: members within ST/2.
  for (const LengthClass& cls : back->length_classes()) {
    for (const SimilarityGroup& g : cls.groups) {
      for (const SubseqRef& ref : g.members()) {
        EXPECT_LE(NormalizedEuclidean(g.centroid_span(),
                                      ref.Resolve(back->dataset())),
                  back->options().st / 2.0 + 1e-9);
      }
    }
  }
}

TEST(BaseIoTest, QuotedNamesWithSpecialCharacters) {
  Dataset ds("data \"set\" with\ttabs");
  ds.Add(TimeSeries("series \"x\"", {0.1, 0.2, 0.3, 0.4, 0.5}, "l\\bel"));
  ds.Add(TimeSeries("plain", {0.5, 0.4, 0.3, 0.2, 0.1}));
  BaseBuildOptions opt;
  opt.st = 0.3;
  opt.min_length = 3;
  Result<OnexBase> base =
      OnexBase::Build(std::make_shared<const Dataset>(ds), opt);
  ASSERT_TRUE(base.ok());
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(*base, buf).ok());
  Result<OnexBase> back = LoadBase(buf);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->dataset().name(), "data \"set\" with\ttabs");
  EXPECT_EQ(back->dataset()[0].name(), "series \"x\"");
  EXPECT_EQ(back->dataset()[0].label(), "l\\bel");
}

TEST(BaseIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/onex_base_test.onex";
  const OnexBase base = MakeBase();
  ASSERT_TRUE(SaveBaseToFile(base, path).ok());
  Result<OnexBase> back = LoadBaseFromFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectBasesEquivalent(base, *back);
  std::remove(path.c_str());
}

TEST(BaseIoTest, MissingFileFails) {
  EXPECT_EQ(LoadBaseFromFile("/no/such/base.onex").status().code(),
            StatusCode::kIoError);
  const OnexBase base = MakeBase();
  EXPECT_EQ(SaveBaseToFile(base, "/no/such/dir/base.onex").code(),
            StatusCode::kIoError);
}

TEST(BaseIoTest, RejectsCorruptedInput) {
  const OnexBase base = MakeBase();
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(base, buf).ok());
  const std::string good = buf.str();

  // Wrong magic.
  {
    std::istringstream in("NOTABASE 1\n" + good.substr(good.find('\n') + 1));
    EXPECT_EQ(LoadBase(in).status().code(), StatusCode::kParseError);
  }
  // Unsupported version.
  {
    std::istringstream in("ONEXBASE 99\n" + good.substr(good.find('\n') + 1));
    EXPECT_EQ(LoadBase(in).status().code(), StatusCode::kParseError);
  }
  // Truncated file (cut in the middle).
  {
    std::istringstream in(good.substr(0, good.size() / 2));
    EXPECT_FALSE(LoadBase(in).ok());
  }
  // Member reference out of range.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("\ng ");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 3, "\ng 99:0 ");
    std::istringstream in(bad);
    EXPECT_FALSE(LoadBase(in).ok());
  }
  // Garbage member token.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("\ng ");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 3, "\ng xx ");
    std::istringstream in(bad);
    EXPECT_FALSE(LoadBase(in).ok());
  }
  // Empty stream.
  {
    std::istringstream in("");
    EXPECT_FALSE(LoadBase(in).ok());
  }
}

/// Regression: the ONEXBASE text format accepts a "groups 0" class header,
/// but Build() never materializes a memberless length class — Restore must
/// skip such drafts instead of installing a LengthClass every drift ratio
/// and group scan would have to special-case. Pre-fix, the empty class
/// leaked through and the loaded base disagreed with the saved one.
TEST(BaseIoTest, LoadSkipsEmptyLengthClassFromFile) {
  const OnexBase base = MakeBase();
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(base, buf).ok());
  std::string text = buf.str();

  // Splice in a zero-group class between the length-4 and length-6 classes
  // and bump the class count to match.
  const std::size_t cls_pos = text.find("\nclass 6 ");
  ASSERT_NE(cls_pos, std::string::npos);
  text.insert(cls_pos + 1, "class 5 groups 0\n");
  const std::size_t count_pos = text.find("classes 4\n");
  ASSERT_NE(count_pos, std::string::npos);
  text.replace(count_pos, 9, "classes 5");

  std::istringstream in(text);
  Result<OnexBase> back = LoadBase(in);
  ASSERT_TRUE(back.ok()) << back.status();
  // The empty class is gone: same classes as the saved base, none of
  // length 5, and every structural total intact.
  ExpectBasesEquivalent(base, *back);
  for (const LengthClass& cls : back->length_classes()) {
    EXPECT_NE(cls.length, 5u);
    EXPECT_GT(cls.total_members, 0u);
  }
  // The maintenance view of the loaded base stays finite everywhere.
  for (const LengthClassDrift& d : ComputeDrift(*back)) {
    EXPECT_TRUE(std::isfinite(d.fraction()));
    EXPECT_GE(d.members, 1u);
  }
}

/// A file whose every class is empty cannot restore: there is no group
/// structure to serve queries from.
TEST(BaseIoTest, LoadRejectsBaseWithOnlyEmptyClasses) {
  const OnexBase base = MakeBase();
  std::stringstream buf;
  ASSERT_TRUE(SaveBase(base, buf).ok());
  const std::string good = buf.str();

  const std::size_t classes_pos = good.find("classes 4\n");
  ASSERT_NE(classes_pos, std::string::npos);
  const std::size_t footer_pos = good.find("repaired ");
  ASSERT_NE(footer_pos, std::string::npos);
  const std::string bad = good.substr(0, classes_pos) +
                          "classes 1\nclass 4 groups 0\n" +
                          good.substr(footer_pos);
  std::istringstream in(bad);
  EXPECT_FALSE(LoadBase(in).ok());
}

TEST(BaseIoTest, RestoreValidatesArguments) {
  const OnexBase base = MakeBase();
  auto ds = base.shared_dataset();
  // Null dataset.
  EXPECT_FALSE(OnexBase::Restore(nullptr, base.options(), {}, 0).ok());
  // No classes.
  EXPECT_FALSE(OnexBase::Restore(ds, base.options(), {}, 0).ok());
  // Unsorted classes.
  {
    std::vector<LengthClassDraft> classes(2);
    classes[0].length = 8;
    classes[1].length = 4;
    GroupBuilder g8(8), g4(4);
    g8.SetMembers({{0, 0, 8}});
    g4.SetMembers({{0, 0, 4}});
    classes[0].groups.push_back(g8);
    classes[1].groups.push_back(g4);
    EXPECT_FALSE(
        OnexBase::Restore(ds, base.options(), std::move(classes), 0).ok());
  }
  // Member length disagrees with its class.
  {
    std::vector<LengthClassDraft> classes(1);
    classes[0].length = 6;
    GroupBuilder g(6);
    g.SetMembers({{0, 0, 4}});
    classes[0].groups.push_back(g);
    EXPECT_FALSE(
        OnexBase::Restore(ds, base.options(), std::move(classes), 0).ok());
  }
}

}  // namespace
}  // namespace onex
