#include "onex/common/math_utils.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"

namespace onex {
namespace {

TEST(MathTest, MeanBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{7.0}), 7.0);
}

TEST(MathTest, VarianceAndStdDev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{3.0}), 0.0);
}

TEST(MathTest, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 4.0, 1.5};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 4.0);
  EXPECT_DOUBLE_EQ(Min(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Max(std::vector<double>{}), 0.0);
}

TEST(MathTest, PercentileEndpointsAndMedian) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.0);
}

TEST(MathTest, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 10.0), 1.0);
}

TEST(MathTest, PercentileIgnoresInputOrder) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
}

TEST(MathTest, PercentileClampsArgument) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 250.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(std::vector<double>{}, 50.0), 0.0);
}

TEST(MathTest, Linspace) {
  const std::vector<double> xs = Linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
  EXPECT_EQ(Linspace(0.0, 1.0, 0).size(), 0u);
  const std::vector<double> one = Linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
}

TEST(MathTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(AlmostEqual(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(MathTest, PearsonCorrelationPerfect) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  const std::vector<double> c{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(MathTest, PearsonCorrelationDegenerate) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, flat), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, std::vector<double>{1.0}), 0.0);
}

TEST(MathTest, AutocorrelationDetectsPeriod) {
  // Strict sine with period 16: autocorrelation at lag 16 near 1.
  std::vector<double> xs;
  for (int i = 0; i < 160; ++i) {
    xs.push_back(std::sin(2.0 * M_PI * i / 16.0));
  }
  EXPECT_GT(Autocorrelation(xs, 16), 0.8);
  EXPECT_LT(Autocorrelation(xs, 8), 0.0);  // anti-phase at half period
}

TEST(MathTest, AutocorrelationEdgeCases) {
  const std::vector<double> flat{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(Autocorrelation(flat, 1), 0.0);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, 3), 0.0);   // lag >= n
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, 10), 0.0);  // lag >> n
}

/// Property sweep: variance is never negative and matches the two-pass
/// definition on random data.
class MathPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MathPropertyTest, VarianceNonNegativeAndConsistent) {
  Rng rng(GetParam());
  std::vector<double> xs;
  const std::size_t n = 1 + rng.UniformIndex(100);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.Uniform(-50.0, 50.0));
  const double var = Variance(xs);
  EXPECT_GE(var, 0.0);
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  EXPECT_NEAR(var, acc / static_cast<double>(n), 1e-9);
}

TEST_P(MathPropertyTest, PercentileMonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> xs;
  const std::size_t n = 2 + rng.UniformIndex(60);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.Uniform(-10.0, 10.0));
  double prev = Percentile(xs, 0.0);
  for (double p = 10.0; p <= 100.0; p += 10.0) {
    const double cur = Percentile(xs, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_P(MathPropertyTest, CorrelationBounded) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.UniformIndex(40);
  std::vector<double> a, b;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(rng.Gaussian());
    b.push_back(rng.Gaussian());
  }
  const double r = PearsonCorrelation(a, b);
  EXPECT_GE(r, -1.0 - 1e-12);
  EXPECT_LE(r, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MathPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace onex
