/// Engine/registry layer of the streaming-maintenance subsystem
/// (DESIGN.md §12): ExtendSeries summaries, batched multi-extend, the
/// drift-triggered background regroup with its ticket lifecycle, and the
/// acceptance property that a query running concurrently with a regroup
/// never observes a torn snapshot (run under TSan in CI).
#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "onex/common/random.h"
#include "onex/core/incremental.h"
#include "onex/engine/engine.h"
#include "test_util.h"

namespace onex {
namespace {

constexpr char kName[] = "feed";

BaseBuildOptions Opt(CentroidPolicy policy = CentroidPolicy::kRunningMean) {
  BaseBuildOptions opt;
  opt.st = 0.25;
  opt.min_length = 4;
  opt.max_length = 0;
  opt.length_step = 2;
  opt.centroid_policy = policy;
  return opt;
}

void LoadAndPrepare(Engine* engine, std::size_t num = 6, std::size_t len = 14,
                    CentroidPolicy policy = CentroidPolicy::kRunningMean) {
  ASSERT_TRUE(
      engine->LoadDataset(kName, testing::SmallDataset(num, len, 7)).ok());
  ASSERT_TRUE(engine->Prepare(kName, Opt(policy)).ok());
}

TEST(EngineMaintenanceTest, ExtendSummaryCountsMatchSubsequenceGrowth) {
  Engine engine;
  LoadAndPrepare(&engine);
  Result<std::shared_ptr<const PreparedDataset>> before = engine.Get(kName);
  ASSERT_TRUE(before.ok());
  const std::size_t members_before = (*before)->base->TotalMembers();
  const std::size_t count_before = (*before)->normalized->CountSubsequences(
      4, (*before)->normalized->MaxLength(), 2, 1);

  Rng rng(3);
  Result<Engine::ExtendSummary> summary =
      engine.ExtendSeries(kName, 2, testing::SmoothSeries(&rng, 4));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->series_extended, 1u);
  EXPECT_EQ(summary->points_appended, 4u);

  Result<std::shared_ptr<const PreparedDataset>> after = engine.Get(kName);
  ASSERT_TRUE(after.ok());
  const std::size_t count_after = (*after)->normalized->CountSubsequences(
      4, (*after)->normalized->MaxLength(), 2, 1);
  EXPECT_EQ(summary->new_members, count_after - count_before);
  EXPECT_EQ((*after)->base->TotalMembers(),
            members_before + summary->new_members);
  EXPECT_EQ((*after)->raw->operator[](2).length(), 18u);
  // Raw and normalized stay in lockstep.
  EXPECT_EQ((*after)->normalized->operator[](2).length(), 18u);
  // Drift was reported for the touched classes only, all of which exist.
  EXPECT_FALSE(summary->drift.empty());
  for (const LengthClassDrift& d : summary->drift) {
    EXPECT_TRUE((*after)->base->FindLengthClass(d.length).ok());
    EXPECT_GE(summary->max_drift, 0.0);
  }
}

TEST(EngineMaintenanceTest, ExtendedTailIsSearchableExactly) {
  Engine engine;
  LoadAndPrepare(&engine);
  Rng rng(11);
  ASSERT_TRUE(
      engine.ExtendSeries(kName, 0, testing::SmoothSeries(&rng, 6)).ok());

  QuerySpec spec;
  spec.series = 0;
  spec.start = 14;  // the appended region
  spec.length = 6;
  QueryOptions qopt;
  qopt.exhaustive = true;
  Result<MatchResult> match = engine.SimilaritySearch(kName, spec, qopt);
  ASSERT_TRUE(match.ok()) << match.status();
  EXPECT_NEAR(match->match.normalized_dtw, 0.0, 1e-9);
}

TEST(EngineMaintenanceTest, BatchExtendMatchesMergedGrowth) {
  Engine engine;
  LoadAndPrepare(&engine);
  Rng rng(17);
  std::vector<Engine::ExtendSpec> batch(3);
  batch[0].series = 1;
  batch[0].points = testing::SmoothSeries(&rng, 3);
  batch[1].series = 4;
  batch[1].points = testing::SmoothSeries(&rng, 2);
  batch[2].series = 1;  // duplicate target: concatenates in order
  batch[2].points = testing::SmoothSeries(&rng, 2);

  Result<Engine::ExtendSummary> summary =
      engine.ExtendSeries(kName, std::move(batch));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->series_extended, 2u);
  EXPECT_EQ(summary->points_appended, 7u);

  Result<std::shared_ptr<const PreparedDataset>> after = engine.Get(kName);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->raw->operator[](1).length(), 19u);
  EXPECT_EQ((*after)->raw->operator[](4).length(), 16u);
  EXPECT_EQ((*after)->base->TotalMembers(),
            (*after)->normalized->CountSubsequences(
                4, (*after)->normalized->MaxLength(), 2, 1));
}

TEST(EngineMaintenanceTest, ExtendRejectsBadInput) {
  Engine engine;
  LoadAndPrepare(&engine);
  EXPECT_FALSE(engine.ExtendSeries("nope", 0, {1.0, 2.0}).ok());
  EXPECT_FALSE(engine.ExtendSeries(kName, 99, {1.0, 2.0}).ok());
  EXPECT_FALSE(engine.ExtendSeries(kName, 0, {}).ok());
  EXPECT_FALSE(
      engine.ExtendSeries(kName, std::vector<Engine::ExtendSpec>{}).ok());
}

TEST(EngineMaintenanceTest, ExtendOnUnpreparedDatasetGrowsRawOnly) {
  Engine engine;
  ASSERT_TRUE(
      engine.LoadDataset(kName, testing::SmallDataset(4, 10, 5)).ok());
  Rng rng(23);
  Result<Engine::ExtendSummary> summary =
      engine.ExtendSeries(kName, 1, testing::SmoothSeries(&rng, 3));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->new_members, 0u);
  EXPECT_FALSE(summary->regroup_scheduled);
  Result<std::shared_ptr<const PreparedDataset>> snap = engine.Get(kName);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->raw->operator[](1).length(), 13u);
  EXPECT_FALSE((*snap)->prepared());
}

TEST(EngineMaintenanceTest, DriftPolicySchedulesRegroupAboveThreshold) {
  Engine engine;
  LoadAndPrepare(&engine);
  DatasetRegistry& registry = engine.registry();
  registry.SetDriftThreshold(0.5);
  EXPECT_DOUBLE_EQ(registry.drift_threshold(), 0.5);

  // Below threshold: drift is recorded, nothing scheduled.
  std::vector<LengthClassDrift> calm{{6, 10, 2}};
  PrepareTicket none = registry.MaybeScheduleRegroup(kName, calm);
  EXPECT_FALSE(none.valid());
  Result<MaintenanceStatus> status = registry.Maintenance(kName);
  ASSERT_TRUE(status.ok());
  EXPECT_DOUBLE_EQ(status->last_max_drift, 0.2);
  EXPECT_FALSE(status->regroup_in_flight);

  // Above threshold: a background regroup of the offending class runs and
  // completes; the counters show it.
  std::vector<LengthClassDrift> hot{{6, 10, 9}};
  PrepareTicket job = registry.MaybeScheduleRegroup(kName, hot);
  ASSERT_TRUE(job.valid());
  ASSERT_TRUE(job.Wait().ok()) << job.Wait();
  status = registry.Maintenance(kName);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->regroups_completed, 1u);
  EXPECT_FALSE(status->regroup_in_flight);

  // The regrouped base still answers and keeps the membership partition.
  Result<std::shared_ptr<const PreparedDataset>> after = engine.Get(kName);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE((*after)->prepared());
  EXPECT_EQ((*after)->base->TotalMembers(),
            (*after)->normalized->CountSubsequences(
                4, (*after)->normalized->MaxLength(), 2, 1));

  // Threshold 0 disables the policy entirely.
  registry.SetDriftThreshold(0.0);
  EXPECT_FALSE(registry.MaybeScheduleRegroup(kName, hot).valid());
}

TEST(EngineMaintenanceTest, RegroupTicketLifecycle) {
  Engine engine;
  LoadAndPrepare(&engine);
  DatasetRegistry& registry = engine.registry();

  // Unknown dataset: a completed ticket carrying the error.
  PrepareTicket missing = registry.RegroupAsync("nope", {6});
  ASSERT_TRUE(missing.valid());
  EXPECT_FALSE(missing.Wait().ok());

  PrepareTicket job = registry.RegroupAsync(kName, {4, 6, 8});
  ASSERT_TRUE(job.valid());
  EXPECT_TRUE(job.Wait().ok()) << job.Wait();

  // A regroup of an evicted slot is a clean no-op: the transparent rebuild
  // subsumes it.
  registry.SetPreparedBudget(1);
  PrepareTicket evicted = registry.RegroupAsync(kName, {4});
  ASSERT_TRUE(evicted.valid());
  EXPECT_TRUE(evicted.Wait().ok()) << evicted.Wait();
  registry.SetPreparedBudget(0);
}

TEST(EngineMaintenanceTest, ExtendAfterEvictionThenQueryReachesNewTail) {
  Engine engine;
  LoadAndPrepare(&engine);
  engine.registry().SetPreparedBudget(1);  // evict the only base
  Rng rng(29);
  Result<Engine::ExtendSummary> summary =
      engine.ExtendSeries(kName, 3, testing::SmoothSeries(&rng, 4));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->new_members, 0u);
  engine.registry().SetPreparedBudget(0);

  QuerySpec spec;
  spec.series = 3;
  spec.start = 14;
  spec.length = 4;
  QueryOptions qopt;
  qopt.exhaustive = true;
  Result<MatchResult> match = engine.SimilaritySearch(kName, spec, qopt);
  ASSERT_TRUE(match.ok()) << match.status();
  EXPECT_NEAR(match->match.normalized_dtw, 0.0, 1e-9);
}

TEST(EngineMaintenanceTest,
     AppendThenExtendWhileEvictedMatchesResidentNormalization) {
  // The frozen-normalization contract under per-series parameters: a series
  // appended and then extended while the base sits evicted must end up with
  // exactly the normalized values the resident path produces — the newcomer's
  // offset/scale freeze at its pre-extend extrema either way.
  Rng rng(41);
  const TimeSeries newcomer("late", testing::SmoothSeries(&rng, 10));
  const std::vector<double> tail = testing::SmoothSeries(&rng, 4);

  auto run = [&](bool evict) -> std::vector<double> {
    Engine engine;
    EXPECT_TRUE(
        engine.LoadDataset(kName, testing::SmallDataset(4, 12, 19)).ok());
    EXPECT_TRUE(engine
                    .Prepare(kName, Opt(CentroidPolicy::kFixedLeader),
                             NormalizationKind::kMinMaxSeries)
                    .ok());
    if (evict) engine.registry().SetPreparedBudget(1);
    EXPECT_TRUE(engine.AppendSeries(kName, newcomer).ok());
    EXPECT_TRUE(engine.ExtendSeries(kName, 4, tail).ok());
    if (evict) engine.registry().SetPreparedBudget(0);
    Result<std::shared_ptr<const PreparedDataset>> snap =
        engine.registry().GetPrepared(kName);
    EXPECT_TRUE(snap.ok()) << snap.status();
    if (!snap.ok()) return {};
    return (*(*snap)->normalized)[4].values();
  };

  const std::vector<double> resident = run(/*evict=*/false);
  const std::vector<double> evicted = run(/*evict=*/true);
  ASSERT_EQ(resident.size(), newcomer.length() + tail.size());
  ASSERT_EQ(resident.size(), evicted.size());
  for (std::size_t i = 0; i < resident.size(); ++i) {
    EXPECT_DOUBLE_EQ(resident[i], evicted[i]) << "point " << i;
  }
}

/// Acceptance: queries racing extends and drift-triggered regroups never
/// observe a torn snapshot. Readers hammer SimilaritySearch while one
/// writer streams tails and another repeatedly schedules regroups of every
/// class; every query must succeed against some consistent snapshot. TSan
/// (CI) verifies the absence of data races on top of the assertions here.
TEST(EngineMaintenanceConcurrencyTest, QueriesRaceExtendsAndRegroups) {
  Engine engine;
  ASSERT_TRUE(
      engine.LoadDataset(kName, testing::SmallDataset(8, 24, 13)).ok());
  BaseBuildOptions opt = Opt();
  opt.max_length = 16;
  ASSERT_TRUE(engine.Prepare(kName, opt).ok());
  engine.registry().SetDriftThreshold(1e-6);  // hair trigger

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries_done{0};
  std::atomic<std::size_t> query_failures{0};

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &stop, &queries_done, &query_failures, r] {
      QuerySpec spec;
      spec.series = static_cast<std::size_t>(r);
      spec.start = 2;
      spec.length = 8;
      while (!stop.load()) {
        Result<MatchResult> match = engine.SimilaritySearch(kName, spec);
        if (!match.ok() || !(match->match.normalized_dtw >= 0.0)) {
          query_failures.fetch_add(1);
        }
        queries_done.fetch_add(1);
      }
    });
  }

  std::thread writer([&engine] {
    Rng rng(31);
    for (int i = 0; i < 12; ++i) {
      const std::size_t series = rng.UniformIndex(8);
      Result<Engine::ExtendSummary> summary = engine.ExtendSeries(
          kName, series, testing::SmoothSeries(&rng, 1 + rng.UniformIndex(3)));
      ASSERT_TRUE(summary.ok()) << summary.status();
      if (summary->regroup_scheduled) {
        EXPECT_TRUE(summary->regroup.Wait().ok());
      }
    }
  });

  std::thread regrouper([&engine, &stop] {
    while (!stop.load()) {
      Result<std::shared_ptr<const PreparedDataset>> snap =
          engine.registry().GetPrepared(kName);
      if (!snap.ok()) continue;
      std::vector<std::size_t> lengths;
      for (const LengthClass& cls : (*snap)->base->length_classes()) {
        lengths.push_back(cls.length);
      }
      PrepareTicket job =
          engine.registry().RegroupAsync(kName, std::move(lengths));
      if (job.valid()) (void)job.Wait();  // FailedPrecondition races are fine
    }
  });

  writer.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  regrouper.join();

  EXPECT_GT(queries_done.load(), 0u);
  EXPECT_EQ(query_failures.load(), 0u);

  // The surviving snapshot is whole: raw, normalized and base agree on the
  // final lengths, and the partition covers exactly the admissible space.
  Result<std::shared_ptr<const PreparedDataset>> final_snap =
      engine.registry().GetPrepared(kName);
  ASSERT_TRUE(final_snap.ok());
  const PreparedDataset& ds = **final_snap;
  ASSERT_EQ(ds.raw->size(), ds.normalized->size());
  for (std::size_t s = 0; s < ds.raw->size(); ++s) {
    EXPECT_EQ((*ds.raw)[s].length(), (*ds.normalized)[s].length());
  }
  EXPECT_EQ(ds.base->TotalMembers(),
            ds.normalized->CountSubsequences(4, 16, 2, 1));
}

}  // namespace
}  // namespace onex
