#include "onex/ts/csv_io.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace onex {
namespace {

TEST(CsvPanelTest, ReadsWideFormatWithHeader) {
  std::istringstream in(
      "state,2000,2001,2002\n"
      "Massachusetts,2.3,2.5,1.9\n"
      "Arkansas,1.1,2.2,2.4\n");
  Result<Dataset> ds = ReadCsvPanelStream(in, "growth");
  ASSERT_TRUE(ds.ok()) << ds.status();
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_EQ((*ds)[0].name(), "Massachusetts");
  EXPECT_EQ((*ds)[0].length(), 3u);
  EXPECT_DOUBLE_EQ((*ds)[0][1], 2.5);
  EXPECT_EQ((*ds)[1].name(), "Arkansas");
}

TEST(CsvPanelTest, HeaderlessMode) {
  std::istringstream in("a,1,2\nb,3,4\n");
  CsvPanelReadOptions opt;
  opt.has_header = false;
  Result<Dataset> ds = ReadCsvPanelStream(in, "d", opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_DOUBLE_EQ((*ds)[0][0], 1.0);
}

TEST(CsvPanelTest, RaggedRowsAreAllowed) {
  std::istringstream in("h,1,2,3\nshort,1,2\nlong,1,2,3,4\n");
  Result<Dataset> ds = ReadCsvPanelStream(in, "d");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)[0].length(), 2u);
  EXPECT_EQ((*ds)[1].length(), 4u);
}

TEST(CsvPanelTest, WhitespaceTolerant) {
  std::istringstream in("h,1\n  Maine , 3.5 \n");
  Result<Dataset> ds = ReadCsvPanelStream(in, "d");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)[0].name(), "Maine");
  EXPECT_DOUBLE_EQ((*ds)[0][0], 3.5);
}

TEST(CsvPanelTest, MissingCellsRejectedByDefault) {
  std::istringstream in("h,1,2\nstate,1.0,\n");
  Result<Dataset> ds = ReadCsvPanelStream(in, "d");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
}

TEST(CsvPanelTest, MissingCellsImputedWhenAllowed) {
  std::istringstream in("h,1,2,3\nstate,1.0,,3.0\n");
  CsvPanelReadOptions opt;
  opt.allow_missing = true;
  opt.missing_value = -1.0;
  Result<Dataset> ds = ReadCsvPanelStream(in, "d", opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ((*ds)[0][1], -1.0);
}

TEST(CsvPanelTest, RejectsMalformedRows) {
  {
    std::istringstream in("h,1\nonlyname\n");
    EXPECT_FALSE(ReadCsvPanelStream(in, "d").ok());
  }
  {
    std::istringstream in("h,1\n,1.0\n");  // empty name
    EXPECT_FALSE(ReadCsvPanelStream(in, "d").ok());
  }
  {
    std::istringstream in("h,1\nstate,abc\n");
    EXPECT_FALSE(ReadCsvPanelStream(in, "d").ok());
  }
  {
    std::istringstream in("h,1,2\n");  // header only
    EXPECT_FALSE(ReadCsvPanelStream(in, "d").ok());
  }
}

TEST(CsvPanelTest, WriteThenReadRoundTrips) {
  Dataset ds("panel");
  ds.Add(TimeSeries("Massachusetts", {2.25, -1.5, 3.75}));
  ds.Add(TimeSeries("Vermont", {0.001, 1e6}));
  std::ostringstream out;
  ASSERT_TRUE(WriteCsvPanelStream(ds, out).ok());
  std::istringstream in(out.str());
  Result<Dataset> back = ReadCsvPanelStream(in, "panel");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].name(), "Massachusetts");
  EXPECT_DOUBLE_EQ((*back)[0][2], 3.75);
  EXPECT_DOUBLE_EQ((*back)[1][1], 1e6);
}

TEST(CsvPanelTest, WriteRejectsCommasInNames) {
  Dataset ds("panel");
  ds.Add(TimeSeries("bad,name", {1.0}));
  std::ostringstream out;
  EXPECT_EQ(WriteCsvPanelStream(ds, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(CsvPanelTest, FileRoundTripAndNaming) {
  const std::string path = ::testing::TempDir() + "/onex_panel_test.csv";
  Dataset ds("whatever");
  ds.Add(TimeSeries("Texas", {1.0, 2.0}));
  ASSERT_TRUE(WriteCsvPanelFile(ds, path).ok());
  Result<Dataset> back = ReadCsvPanelFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "onex_panel_test");
  EXPECT_EQ((*back)[0].name(), "Texas");
  std::remove(path.c_str());
}

TEST(CsvPanelTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsvPanelFile("/no/such/panel.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace onex
