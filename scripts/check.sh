#!/usr/bin/env sh
# Tier-1 verify: configure, build everything (library, tests, benches,
# examples), run the full test suite. CI runs exactly this script; run it
# locally before pushing.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j"$(nproc)"

# Quick durability smoke on top of the suite run: stream into a durable
# engine, restart it, demand identical answers (DESIGN.md §13).
./engine_recovery_test --gtest_filter='EngineRecovery.SmokeRestart' \
  --gtest_brief=1

# Reactor smoke (DESIGN.md §15): 1k concurrent connections with a live
# serving path underneath, a pipelined binary batch, METRICS sanity, and
# text/binary dialect equivalence. Exits nonzero if any of those fail.
./bench_e12_load --smoke
