#!/usr/bin/env sh
# Tier-1 verify: configure, build everything (library, tests, benches,
# examples), run the full test suite. CI runs exactly this script; run it
# locally before pushing.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j"$(nproc)"

# Quick durability smoke on top of the suite run: stream into a durable
# engine, restart it, demand identical answers (DESIGN.md §13).
./engine_recovery_test --gtest_filter='EngineRecovery.SmokeRestart' \
  --gtest_brief=1

# Reactor smoke (DESIGN.md §15): 1k concurrent connections with a live
# serving path underneath, a pipelined binary batch, METRICS sanity, and
# text/binary dialect equivalence. Exits nonzero if any of those fail.
./bench_e12_load --smoke

# Cold-restart smoke (DESIGN.md §17): checkpoint a small fleet, restart
# with the mapped tier on, and demand the first MATCH is served off the
# mmap'd arena with answers identical to resident and evicted-rebuild.
./bench_e13_coldstart --smoke

# Cluster smoke (DESIGN.md §16): boot a real 3-process cluster, route
# traffic through every node, kill -9 the shard that owns "demo", and
# demand the survivors keep answering after promotion. HRW placement
# depends only on the dataset name and node *index*, so "demo" lands on
# node index 2 for any 3-node cluster regardless of ports.
CLUSTER_ROOT="$(mktemp -d)"
CLUSTER_NODES="127.0.0.1:7741,127.0.0.1:7742,127.0.0.1:7743"
./onexd --cluster-nodes="$CLUSTER_NODES" --cluster-self=0 \
  --data-dir="$CLUSTER_ROOT/n0" --no-fsync >/dev/null 2>&1 &
N0=$!
./onexd --cluster-nodes="$CLUSTER_NODES" --cluster-self=1 \
  --data-dir="$CLUSTER_ROOT/n1" --no-fsync >/dev/null 2>&1 &
N1=$!
./onexd --cluster-nodes="$CLUSTER_NODES" --cluster-self=2 \
  --data-dir="$CLUSTER_ROOT/n2" --no-fsync >/dev/null 2>&1 &
N2=$!
cleanup_cluster() {
  kill -9 "$N0" "$N1" "$N2" 2>/dev/null || :
  rm -rf "$CLUSTER_ROOT"
}
trap cleanup_cluster EXIT

for port in 7741 7742 7743; do
  tries=0
  until ./onex_cli "$port" PING >/dev/null 2>&1; do
    tries=$((tries + 1))
    [ "$tries" -lt 150 ] || { echo "cluster node :$port never came up"; exit 1; }
    sleep 0.2
  done
done

./onex_cli 7741 "GEN demo sine num=4 len=32 seed=7" | grep -q '"ok": true'
./onex_cli 7741 "PREPARE demo st=0.2 maxlen=16" | grep -q '"ok": true'
./onex_cli 7742 "KNN demo q=0:0:12 k=2" | grep -q '"ok": true'
./onex_cli 7743 "MATCH datasets=demo q=1:2:10" | grep -q '"ok": true'

# Fault injection: node 2 is demo's primary; the coordinator must notice,
# promote a caught-up replica, and keep serving bit-identical answers.
kill -9 "$N2"
./onex_cli 7741 CLUSTER | grep -q '"ok": true'
./onex_cli 7741 "KNN demo q=0:0:12 k=2" | grep -q '"ok": true'
./onex_cli 7742 "MATCH demo q=1:2:10" | grep -q '"ok": true'

cleanup_cluster
trap - EXIT
echo "cluster smoke: OK"
