#!/usr/bin/env sh
# Perf-trajectory benchmark runner: builds (reusing ./build) and drops
# machine-readable results at the repo root so the numbers accumulate
# across PRs.
#
#   BENCH_query.json        bench_e2_query_speedup — the ONEX-vs-UCR
#                           headline comparison plus the parallel query
#                           scaling sweep (serial vs 1/2/4/N threads)
#   BENCH_maintenance.json  bench_e10_maintenance — streaming maintenance:
#                           extend throughput, drift-regroup latency and
#                           query latency during a background regroup
#   BENCH_kernels.json      bench_e11_kernel_sweep — distance-kernel layer
#                           ablation: scalar vs SIMD tables, pruning
#                           cascade on vs off (DESIGN.md §14)
#   BENCH_net.json          bench_e12_load — the serving path under load:
#                           10k idle connections on the epoll reactor,
#                           pipelined-binary vs blocking-text throughput,
#                           text/binary dialect equivalence (DESIGN.md §15)
#   BENCH_tier.json         bench_e13_coldstart — tiered-storage cold
#                           start: time-to-first-query off an mmap'd arena
#                           checkpoint vs evicted-rebuild vs resident, at
#                           16/64/256 datasets (DESIGN.md §17)
#   BENCH_analytics.json    bench_e14_analytics — analytics on the group
#                           structure: ANOMALY/MOTIF/FORECAST fast paths
#                           vs index-blind scans, BOCPD truncation vs the
#                           exact recursion (DESIGN.md §18)
#
# Usage: scripts/bench.sh [query.json [maintenance.json [kernels.json [net.json [tier.json [analytics.json]]]]]]
set -eu

cd "$(dirname "$0")/.."
QUERY_OUT="${1:-BENCH_query.json}"
MAINT_OUT="${2:-BENCH_maintenance.json}"
KERNEL_OUT="${3:-BENCH_kernels.json}"
NET_OUT="${4:-BENCH_net.json}"
TIER_OUT="${5:-BENCH_tier.json}"
ANALYTICS_OUT="${6:-BENCH_analytics.json}"

cmake -B build -S . -DONEX_BUILD_BENCHES=ON >/dev/null
cmake --build build -j --target bench_e2_query_speedup \
  bench_e10_maintenance bench_e11_kernel_sweep bench_e12_load \
  bench_e13_coldstart bench_e14_analytics >/dev/null

./build/bench_e2_query_speedup --json "$QUERY_OUT"
echo "perf record: $QUERY_OUT"
./build/bench_e10_maintenance --json "$MAINT_OUT"
echo "perf record: $MAINT_OUT"
./build/bench_e11_kernel_sweep --json "$KERNEL_OUT"
echo "perf record: $KERNEL_OUT"
./build/bench_e12_load --json "$NET_OUT"
echo "perf record: $NET_OUT"
./build/bench_e13_coldstart --json "$TIER_OUT"
echo "perf record: $TIER_OUT"
./build/bench_e14_analytics --json "$ANALYTICS_OUT"
echo "perf record: $ANALYTICS_OUT"
