#!/usr/bin/env sh
# Query-speedup benchmark runner: builds (reusing ./build), runs
# bench_e2_query_speedup — the ONEX-vs-UCR headline comparison plus the
# parallel query scaling sweep (serial vs 1/2/4/N threads) — and drops
# machine-readable results into BENCH_query.json at the repo root so the
# perf trajectory accumulates across PRs.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_query.json}"

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_e2_query_speedup >/dev/null

./build/bench_e2_query_speedup --json "$OUT"
echo "perf record: $OUT"
